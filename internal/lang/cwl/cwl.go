// Package cwl parses a subset of the Common Workflow Language v1.2 into
// Hi-WAY's black-box task model — the modern frontend companion to the
// paper's Cuneiform/DAX/Galaxy trio. The subset covers CommandLineTool and
// Workflow documents with single-port scatter, secondaryFiles, multi-source
// step inputs, and resource requirements, compiling into the same
// internal/wf DAG every other frontend targets.
//
// Hi-WAY accepts the JSON serialization of CWL (every JSON document is a
// valid CWL document; YAML is a superset of JSON, so any CWL file converts
// mechanically). Documents may be:
//
//   - a $graph bundle: {"cwlVersion": "v1.2", "$graph": [workflow, tools…]},
//   - a standalone Workflow whose steps use inline "run" tools, or
//   - a bare CommandLineTool, executed as a single-task workflow.
//
// The listing fields (inputs, outputs, steps) are accepted in both array
// form ([{"id": …}, …], which fixes task order) and map form ({"id": …},
// ordered by sorted key). Supported types are File, string, File[] and
// string[] (plus the equivalent {"type": "array", "items": …} object form).
//
// Resource hints ride on requirements/hints: the standard
// ResourceRequirement (coresMin → threads, ramMin → memMB, both clamped to
// sane simulation ranges) and the extension class "hiway:Profile" carrying
// cpuSeconds (reference core-seconds), outSizeMB (output id → produced MB)
// and outCount (output id → cardinality of an array output, so a scatter
// over a step-output array has a statically known width).
package cwl

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"hiway/internal/wf"
)

// Resource-hint clamping bounds: simulated containers cannot use more
// parallelism or memory than the largest node spec offers, and array
// outputs are capped so a malformed document cannot allocate unbounded
// tasks or files.
const (
	maxThreads  = 64
	maxMemMB    = 1 << 20
	maxOutCount = 4096
	maxTasks    = 100_000
)

// Options configures parsing.
type Options struct {
	// Inputs overrides workflow input defaults: input id → staged path
	// (the -bind flag of the CLI). A File input with neither a default nor
	// a binding is an error.
	Inputs map[string]string
}

// Driver executes CWL workflows; it is a wf.StaticDriver, so static
// scheduling policies (HEFT, round-robin) apply — the CWL subset has no
// run-time unfolding.
type Driver struct {
	wf.StaticBase
	opts Options
}

// NewDriver returns a static driver for the CWL document src.
func NewDriver(name, src string, opts Options) *Driver {
	d := &Driver{opts: opts}
	d.WFName = name
	d.Build = func() ([]*wf.Task, []string, []wf.Edge, error) {
		return build(name, src, opts)
	}
	return d
}

// rawObj is one decoded JSON object with undecoded field values.
type rawObj map[string]json.RawMessage

// namedRaw is one entry of a listing field: its id plus its object.
type namedRaw struct {
	id  string
	obj rawObj
}

// listing decodes a CWL listing field in either array form (objects with
// an "id" field, document order) or map form (id → object, sorted by id).
func listing(raw json.RawMessage, what string) ([]namedRaw, error) {
	if len(raw) == 0 {
		return nil, nil
	}
	var arr []rawObj
	if err := json.Unmarshal(raw, &arr); err == nil {
		out := make([]namedRaw, 0, len(arr))
		for i, obj := range arr {
			id, err := strField(obj, "id")
			if err != nil || id == "" {
				return nil, fmt.Errorf("cwl: %s entry %d has no id", what, i)
			}
			out = append(out, namedRaw{id: id, obj: obj})
		}
		return out, nil
	}
	var m map[string]rawObj
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("cwl: %s must be an array of objects or a map: %v", what, err)
	}
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]namedRaw, 0, len(ids))
	for _, id := range ids {
		out = append(out, namedRaw{id: id, obj: m[id]})
	}
	return out, nil
}

// strField decodes a string-valued field, returning "" when absent.
func strField(obj rawObj, key string) (string, error) {
	raw, ok := obj[key]
	if !ok {
		return "", nil
	}
	var s string
	if err := json.Unmarshal(raw, &s); err != nil {
		return "", fmt.Errorf("field %q is not a string", key)
	}
	return s, nil
}

// strList decodes a field that is either one string or an array of strings.
func strList(raw json.RawMessage) ([]string, error) {
	if len(raw) == 0 {
		return nil, nil
	}
	var s string
	if err := json.Unmarshal(raw, &s); err == nil {
		return []string{s}, nil
	}
	var ss []string
	if err := json.Unmarshal(raw, &ss); err != nil {
		return nil, fmt.Errorf("want a string or an array of strings")
	}
	return ss, nil
}

// portType is the declared type of a tool or workflow port.
type portType struct {
	file  bool // File vs string
	array bool
}

// parseType decodes a CWL type: "File", "string", "File[]", "string[]", or
// the object form {"type": "array", "items": …}.
func parseType(raw json.RawMessage) (portType, error) {
	if len(raw) == 0 {
		return portType{}, fmt.Errorf("missing type")
	}
	var s string
	if err := json.Unmarshal(raw, &s); err == nil {
		array := strings.HasSuffix(s, "[]")
		s = strings.TrimSuffix(s, "[]")
		switch s {
		case "File":
			return portType{file: true, array: array}, nil
		case "string":
			return portType{file: false, array: array}, nil
		default:
			return portType{}, fmt.Errorf("unsupported type %q (want File, string, File[], string[])", s)
		}
	}
	var obj struct {
		Type  string          `json:"type"`
		Items json.RawMessage `json:"items"`
	}
	if err := json.Unmarshal(raw, &obj); err != nil || obj.Type != "array" {
		return portType{}, fmt.Errorf("unsupported type (want a type name or an array type object)")
	}
	item, err := parseType(obj.Items)
	if err != nil {
		return portType{}, fmt.Errorf("array items: %v", err)
	}
	if item.array {
		return portType{}, fmt.Errorf("nested array types are not supported")
	}
	item.array = true
	return item, nil
}

// profile is the resource model attached to a tool via requirements/hints.
type profile struct {
	cpuSeconds float64
	threads    int
	memMB      int
	outSizeMB  map[string]float64
	outCount   map[string]int
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// parseReqs folds requirements and hints (array form, or map class→object)
// into the profile. Unknown classes are ignored, as CWL hints demand.
func parseReqs(p *profile, raw json.RawMessage) error {
	if len(raw) == 0 {
		return nil
	}
	var entries []rawObj
	if err := json.Unmarshal(raw, &entries); err != nil {
		var m map[string]rawObj
		if err := json.Unmarshal(raw, &m); err != nil {
			return fmt.Errorf("requirements must be an array or a map")
		}
		classes := make([]string, 0, len(m))
		for c := range m {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		for _, c := range classes {
			obj := rawObj{}
			for k, v := range m[c] {
				obj[k] = v
			}
			obj["class"], _ = json.Marshal(c)
			entries = append(entries, obj)
		}
	}
	for _, e := range entries {
		class, _ := strField(e, "class")
		switch class {
		case "ResourceRequirement":
			var rr struct {
				CoresMin float64 `json:"coresMin"`
				RamMin   float64 `json:"ramMin"`
			}
			b, _ := json.Marshal(e)
			if err := json.Unmarshal(b, &rr); err != nil {
				return fmt.Errorf("ResourceRequirement: %v", err)
			}
			if rr.CoresMin > 0 {
				p.threads = clampInt(int(rr.CoresMin), 1, maxThreads)
			}
			if rr.RamMin > 0 {
				p.memMB = clampInt(int(rr.RamMin), 1, maxMemMB)
			}
		case "hiway:Profile":
			var hp struct {
				CPUSeconds float64            `json:"cpuSeconds"`
				OutSizeMB  map[string]float64 `json:"outSizeMB"`
				OutCount   map[string]int     `json:"outCount"`
			}
			b, _ := json.Marshal(e)
			if err := json.Unmarshal(b, &hp); err != nil {
				return fmt.Errorf("hiway:Profile: %v", err)
			}
			if hp.CPUSeconds > 0 {
				p.cpuSeconds = hp.CPUSeconds
			}
			for id, sz := range hp.OutSizeMB {
				if p.outSizeMB == nil {
					p.outSizeMB = map[string]float64{}
				}
				if sz <= 0 {
					sz = 1
				}
				p.outSizeMB[id] = sz
			}
			for id, n := range hp.OutCount {
				if p.outCount == nil {
					p.outCount = map[string]int{}
				}
				p.outCount[id] = clampInt(n, 1, maxOutCount)
			}
		}
	}
	return nil
}

// toolPort is one declared input or output of a CommandLineTool.
type toolPort struct {
	id             string
	typ            portType
	secondaryFiles []string
	def            []string // tool-level default for string inputs
	hasDefault     bool
}

// tool is one parsed CommandLineTool.
type tool struct {
	id      string
	command string
	inputs  []toolPort
	outputs []toolPort
	prof    profile
}

func parseTool(obj rawObj) (*tool, error) {
	id, _ := strField(obj, "id")
	id = strings.TrimPrefix(id, "#")
	if id == "" {
		return nil, fmt.Errorf("cwl: CommandLineTool has no id")
	}
	t := &tool{id: id}
	base, err := strList(obj["baseCommand"])
	if err != nil {
		return nil, fmt.Errorf("cwl: tool %q baseCommand: %v", id, err)
	}
	args, err := strList(obj["arguments"])
	if err != nil {
		return nil, fmt.Errorf("cwl: tool %q arguments: %v", id, err)
	}
	t.command = strings.Join(append(base, args...), " ")
	if err := parseReqs(&t.prof, obj["requirements"]); err != nil {
		return nil, fmt.Errorf("cwl: tool %q: %v", id, err)
	}
	if err := parseReqs(&t.prof, obj["hints"]); err != nil {
		return nil, fmt.Errorf("cwl: tool %q: %v", id, err)
	}
	ins, err := listing(obj["inputs"], "tool "+id+" inputs")
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	for _, in := range ins {
		typ, err := parseType(in.obj["type"])
		if err != nil {
			return nil, fmt.Errorf("cwl: tool %q input %q: %v", id, in.id, err)
		}
		if seen[in.id] {
			return nil, fmt.Errorf("cwl: tool %q declares input %q twice", id, in.id)
		}
		seen[in.id] = true
		port := toolPort{id: in.id, typ: typ}
		if port.secondaryFiles, err = strList(in.obj["secondaryFiles"]); err != nil {
			return nil, fmt.Errorf("cwl: tool %q input %q secondaryFiles: %v", id, in.id, err)
		}
		if raw, ok := in.obj["default"]; ok {
			vals, err := defaultValues(raw, typ)
			if err != nil {
				return nil, fmt.Errorf("cwl: tool %q input %q default: %v", id, in.id, err)
			}
			port.def, port.hasDefault = vals, true
		}
		t.inputs = append(t.inputs, port)
	}
	outs, err := listing(obj["outputs"], "tool "+id+" outputs")
	if err != nil {
		return nil, err
	}
	if len(outs) == 0 {
		return nil, fmt.Errorf("cwl: tool %q declares no outputs", id)
	}
	for _, o := range outs {
		typ, err := parseType(o.obj["type"])
		if err != nil {
			return nil, fmt.Errorf("cwl: tool %q output %q: %v", id, o.id, err)
		}
		if !typ.file {
			return nil, fmt.Errorf("cwl: tool %q output %q must be File or File[]", id, o.id)
		}
		if seen[o.id] {
			return nil, fmt.Errorf("cwl: tool %q declares %q twice", id, o.id)
		}
		seen[o.id] = true
		t.outputs = append(t.outputs, toolPort{id: o.id, typ: typ})
	}
	return t, nil
}

// defaultValues decodes a default for a port: a string, a File object, or
// an array of either, according to the declared type.
func defaultValues(raw json.RawMessage, typ portType) ([]string, error) {
	one := func(raw json.RawMessage) (string, error) {
		if !typ.file {
			var s string
			if err := json.Unmarshal(raw, &s); err != nil {
				return "", fmt.Errorf("want a string")
			}
			return s, nil
		}
		var f struct {
			Class    string `json:"class"`
			Location string `json:"location"`
			Path     string `json:"path"`
		}
		if err := json.Unmarshal(raw, &f); err != nil || f.Class != "File" {
			return "", fmt.Errorf("want a File object {\"class\": \"File\", \"location\": …}")
		}
		p := f.Location
		if p == "" {
			p = f.Path
		}
		if p == "" {
			return "", fmt.Errorf("File default has no location")
		}
		return p, nil
	}
	if !typ.array {
		v, err := one(raw)
		if err != nil {
			return nil, err
		}
		return []string{v}, nil
	}
	var arr []json.RawMessage
	if err := json.Unmarshal(raw, &arr); err != nil {
		return nil, fmt.Errorf("want an array")
	}
	out := make([]string, 0, len(arr))
	for _, e := range arr {
		v, err := one(e)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// stepIn is one bound input of a workflow step.
type stepIn struct {
	id      string
	sources []string
	def     json.RawMessage
}

// step is one workflow step before materialization.
type step struct {
	id      string
	runRef  string
	tool    *tool // inline run
	scatter []string
	ins     []stepIn
	outs    []string
	prof    profile // step-level resource overrides
}

// wfInput is one declared workflow input with its resolved value.
type wfInput struct {
	id   string
	typ  portType
	vals []string
	set  bool
}

// secondaryPath applies a CWL secondaryFiles pattern to a primary path:
// ".ext" appends the suffix; each leading "^" strips one extension first.
func secondaryPath(primary, pattern string) string {
	for strings.HasPrefix(pattern, "^") {
		pattern = strings.TrimPrefix(pattern, "^")
		if i := strings.LastIndex(primary, "."); i > strings.LastIndex(primary, "/") {
			primary = primary[:i]
		}
	}
	return primary + pattern
}

// build parses the document and compiles it into tasks. Dependencies are
// carried by file paths: each step's outputs get synthesized paths
// (<workflow>/<tool>_<taskID>/<outID>, mirroring the Cuneiform frontend)
// that downstream steps bind as inputs, and wf.NewDAG recovers the edges.
func build(name, src string, opts Options) ([]*wf.Task, []string, []wf.Edge, error) {
	fail := func(format string, args ...any) ([]*wf.Task, []string, []wf.Edge, error) {
		return nil, nil, nil, fmt.Errorf(format, args...)
	}
	var doc rawObj
	if err := json.Unmarshal([]byte(src), &doc); err != nil {
		return fail("cwl: parsing %s: %v", name, err)
	}
	if ver, _ := strField(doc, "cwlVersion"); ver == "" {
		return fail("cwl: %s: missing cwlVersion", name)
	}

	// Collect the process objects: the workflow plus the tool registry.
	tools := map[string]*tool{}
	var wfObj rawObj
	addProcess := func(obj rawObj) error {
		class, _ := strField(obj, "class")
		switch class {
		case "CommandLineTool":
			t, err := parseTool(obj)
			if err != nil {
				return err
			}
			if _, dup := tools[t.id]; dup {
				return fmt.Errorf("cwl: tool %q defined twice", t.id)
			}
			tools[t.id] = t
			return nil
		case "Workflow":
			if wfObj != nil {
				return fmt.Errorf("cwl: document contains more than one Workflow")
			}
			wfObj = obj
			return nil
		default:
			return fmt.Errorf("cwl: unsupported process class %q", class)
		}
	}
	if graphRaw, ok := doc["$graph"]; ok {
		var graph []rawObj
		if err := json.Unmarshal(graphRaw, &graph); err != nil {
			return fail("cwl: $graph must be an array of process objects")
		}
		for _, obj := range graph {
			if err := addProcess(obj); err != nil {
				return fail("%v", err)
			}
		}
	} else {
		if err := addProcess(doc); err != nil {
			return fail("%v", err)
		}
	}

	// A bare CommandLineTool runs as a single-step workflow over its own
	// defaults, so `hiway sim -w tool.cwl` works on a tool document.
	if wfObj == nil {
		if len(tools) != 1 {
			return fail("cwl: %s has no Workflow (and is not a single CommandLineTool)", name)
		}
		for id := range tools {
			wfObj = rawObj{
				"steps": json.RawMessage(fmt.Sprintf(`[{"id": %q, "run": %q, "out": %s}]`,
					"main", "#"+id, "[]")),
			}
		}
	}

	// Workflow inputs: bindings override defaults.
	insRaw, err := listing(wfObj["inputs"], "workflow inputs")
	if err != nil {
		return fail("%v", err)
	}
	wfIns := map[string]*wfInput{}
	for _, in := range insRaw {
		if _, dup := wfIns[in.id]; dup {
			return fail("cwl: workflow declares input %q twice", in.id)
		}
		typ, err := parseType(in.obj["type"])
		if err != nil {
			return fail("cwl: workflow input %q: %v", in.id, err)
		}
		wi := &wfInput{id: in.id, typ: typ}
		if bound, ok := opts.Inputs[in.id]; ok {
			wi.vals, wi.set = []string{bound}, true
		} else if raw, ok := in.obj["default"]; ok {
			if wi.vals, err = defaultValues(raw, typ); err != nil {
				return fail("cwl: workflow input %q default: %v", in.id, err)
			}
			wi.set = true
		}
		wfIns[in.id] = wi
	}

	// Steps, with upfront source validation so the wave loop below can
	// attribute any stall to a genuine cycle.
	stepsRaw, err := listing(wfObj["steps"], "workflow steps")
	if err != nil {
		return fail("%v", err)
	}
	if len(stepsRaw) == 0 {
		return fail("cwl: workflow %s declares no steps", name)
	}
	steps := make([]*step, 0, len(stepsRaw))
	byID := map[string]*step{}
	stepOut := map[string]bool{} // "step/out" declared
	for _, sr := range stepsRaw {
		if _, dup := byID[sr.id]; dup {
			return fail("cwl: duplicate step id %q", sr.id)
		}
		st := &step{id: sr.id}
		if runRaw, ok := sr.obj["run"]; ok {
			var ref string
			if err := json.Unmarshal(runRaw, &ref); err == nil {
				st.runRef = strings.TrimPrefix(ref, "#")
			} else {
				var inline rawObj
				if err := json.Unmarshal(runRaw, &inline); err != nil {
					return fail("cwl: step %q: run must be a reference or an inline tool", sr.id)
				}
				if _, ok := inline["id"]; !ok {
					inline["id"], _ = json.Marshal(sr.id)
				}
				if st.tool, err = parseTool(inline); err != nil {
					return fail("cwl: step %q inline run: %v", sr.id, err)
				}
			}
		} else {
			return fail("cwl: step %q has no run", sr.id)
		}
		if scatterRaw, ok := sr.obj["scatter"]; ok {
			if st.scatter, err = strList(scatterRaw); err != nil {
				return fail("cwl: step %q scatter: %v", sr.id, err)
			}
			if len(st.scatter) == 0 {
				return fail("cwl: step %q has an empty scatter", sr.id)
			}
			if len(st.scatter) > 1 {
				return fail("cwl: step %q scatters over %d ports; only single-port scatter is supported", sr.id, len(st.scatter))
			}
		}
		inList, err := listing(sr.obj["in"], "step "+sr.id+" in")
		if err != nil {
			return fail("%v", err)
		}
		seenIn := map[string]bool{}
		for _, b := range inList {
			if seenIn[b.id] {
				return fail("cwl: step %q binds input %q twice", sr.id, b.id)
			}
			seenIn[b.id] = true
			si := stepIn{id: b.id, def: b.obj["default"]}
			if si.sources, err = strList(b.obj["source"]); err != nil {
				return fail("cwl: step %q input %q source: %v", sr.id, b.id, err)
			}
			st.ins = append(st.ins, si)
		}
		if st.outs, err = strList(sr.obj["out"]); err != nil {
			return fail("cwl: step %q out: %v", sr.id, err)
		}
		if err := parseReqs(&st.prof, sr.obj["requirements"]); err != nil {
			return fail("cwl: step %q: %v", sr.id, err)
		}
		if err := parseReqs(&st.prof, sr.obj["hints"]); err != nil {
			return fail("cwl: step %q: %v", sr.id, err)
		}
		byID[sr.id] = st
		steps = append(steps, st)
	}

	// Resolve each step's tool and validate ports and sources.
	for _, st := range steps {
		if st.tool == nil {
			t, ok := tools[st.runRef]
			if !ok {
				return fail("cwl: step %q runs unknown tool %q", st.id, st.runRef)
			}
			st.tool = t
		}
		toolIn := map[string]*toolPort{}
		for i := range st.tool.inputs {
			toolIn[st.tool.inputs[i].id] = &st.tool.inputs[i]
		}
		toolOut := map[string]bool{}
		for _, o := range st.tool.outputs {
			toolOut[o.id] = true
		}
		if len(st.outs) == 0 {
			for _, o := range st.tool.outputs {
				st.outs = append(st.outs, o.id)
			}
		}
		for _, o := range st.outs {
			if !toolOut[o] {
				return fail("cwl: step %q lists output %q, which tool %q does not declare", st.id, o, st.tool.id)
			}
			stepOut[st.id+"/"+o] = true
		}
		for _, b := range st.ins {
			if _, ok := toolIn[b.id]; !ok {
				return fail("cwl: step %q binds %q, which tool %q does not declare", st.id, b.id, st.tool.id)
			}
		}
		for _, p := range st.scatter {
			if _, ok := toolIn[p]; !ok {
				return fail("cwl: step %q scatters over %q, which tool %q does not declare", st.id, p, st.tool.id)
			}
		}
	}
	for _, st := range steps {
		for _, b := range st.ins {
			for _, src := range b.sources {
				if _, ok := wfIns[src]; ok {
					continue
				}
				sid, _, ok := strings.Cut(src, "/")
				if !ok || byID[sid] == nil {
					return fail("cwl: step %q input %q references unknown source %q", st.id, b.id, src)
				}
				if !stepOut[src] {
					return fail("cwl: step %q input %q references %q, which step %q does not produce", st.id, b.id, src, sid)
				}
			}
		}
	}

	// Materialize steps in dependency waves. Document order within a wave
	// fixes the task-ID sequence; a stalled wave is a cycle (all sources
	// were validated to exist above).
	produced := map[string][]string{} // "step/out" → gathered paths, instance order
	var tasks []*wf.Task
	resolvedSteps := 0
	done := map[string]bool{}
	for resolvedSteps < len(steps) {
		progress := false
		for _, st := range steps {
			if done[st.id] {
				continue
			}
			ready := true
			for _, b := range st.ins {
				for _, src := range b.sources {
					if _, ok := wfIns[src]; ok {
						continue
					}
					if _, ok := produced[src]; !ok {
						ready = false
					}
				}
			}
			if !ready {
				continue
			}
			ts, err := materialize(name, st, wfIns, produced)
			if err != nil {
				return fail("%v", err)
			}
			tasks = append(tasks, ts...)
			if len(tasks) > maxTasks {
				return fail("cwl: workflow %s expands to more than %d tasks", name, maxTasks)
			}
			done[st.id] = true
			resolvedSteps++
			progress = true
		}
		if !progress {
			var stuck []string
			for _, st := range steps {
				if !done[st.id] {
					stuck = append(stuck, st.id)
				}
			}
			return fail("cwl: cyclic step references among %v", stuck)
		}
	}

	// Validate workflow outputs' sources; the DAG's sinks are the outputs.
	outsRaw, err := listing(wfObj["outputs"], "workflow outputs")
	if err != nil {
		return fail("%v", err)
	}
	for _, o := range outsRaw {
		srcs, err := strList(o.obj["outputSource"])
		if err != nil {
			return fail("cwl: workflow output %q outputSource: %v", o.id, err)
		}
		for _, src := range srcs {
			if _, ok := produced[src]; !ok {
				if _, ok := wfIns[src]; !ok {
					return fail("cwl: workflow output %q references unknown source %q", o.id, src)
				}
			}
		}
	}

	// Initial inputs: every consumed path no task produces (workflow input
	// values plus their secondaryFiles expansions), in first-seen order —
	// the caller stages them before launch.
	producedPath := map[string]bool{}
	for _, t := range tasks {
		for _, fis := range t.Declared {
			for _, fi := range fis {
				producedPath[fi.Path] = true
			}
		}
	}
	var initial []string
	seen := map[string]bool{}
	for _, t := range tasks {
		for _, p := range t.Inputs {
			if !producedPath[p] && !seen[p] {
				seen[p] = true
				initial = append(initial, p)
			}
		}
	}
	return tasks, initial, nil, nil
}

// materialize expands one step into tasks: one per scatter element, or a
// single task without scatter.
func materialize(name string, st *step, wfIns map[string]*wfInput, produced map[string][]string) ([]*wf.Task, error) {
	t := st.tool
	// Bind every tool input: step bindings win, then tool defaults.
	type binding struct {
		vals []string
		set  bool
	}
	bound := map[string]binding{}
	for _, b := range st.ins {
		var vals []string
		for _, src := range b.sources {
			if wi, ok := wfIns[src]; ok {
				if !wi.set {
					return nil, fmt.Errorf("cwl: workflow input %q (used by step %q) has no default and no binding", src, st.id)
				}
				vals = append(vals, wi.vals...)
				continue
			}
			vals = append(vals, produced[src]...)
		}
		if len(b.sources) == 0 {
			var port *toolPort
			for i := range t.inputs {
				if t.inputs[i].id == b.id {
					port = &t.inputs[i]
				}
			}
			if len(b.def) == 0 {
				return nil, fmt.Errorf("cwl: step %q input %q has neither source nor default", st.id, b.id)
			}
			var err error
			if vals, err = defaultValues(b.def, port.typ); err != nil {
				return nil, fmt.Errorf("cwl: step %q input %q default: %v", st.id, b.id, err)
			}
		}
		bound[b.id] = binding{vals: vals, set: true}
	}
	for _, in := range t.inputs {
		if bound[in.id].set {
			continue
		}
		if in.hasDefault {
			bound[in.id] = binding{vals: in.def, set: true}
			continue
		}
		return nil, fmt.Errorf("cwl: step %q does not bind tool input %q (and it has no default)", st.id, in.id)
	}

	// Scatter width.
	n := 1
	scatterPort := ""
	if len(st.scatter) == 1 {
		scatterPort = st.scatter[0]
		n = len(bound[scatterPort].vals)
		if n == 0 {
			return nil, fmt.Errorf("cwl: step %q scatters over empty input %q", st.id, scatterPort)
		}
	}

	prof := t.prof
	if st.prof.cpuSeconds > 0 {
		prof.cpuSeconds = st.prof.cpuSeconds
	}
	if st.prof.threads > 0 {
		prof.threads = st.prof.threads
	}
	if st.prof.memMB > 0 {
		prof.memMB = st.prof.memMB
	}

	var tasks []*wf.Task
	for i := 0; i < n; i++ {
		task := &wf.Task{
			ID:         wf.NextID(),
			Name:       t.id,
			Command:    t.command,
			CPUSeconds: prof.cpuSeconds,
			Threads:    max(1, prof.threads),
			MemMB:      prof.memMB,
			Declared:   make(map[string][]wf.FileInfo),
			Env:        make(map[string]string),
			Meta:       map[string]string{"lang": "cwl", "cwlStep": st.id, "workflow": name},
		}
		seen := map[string]bool{}
		for _, in := range t.inputs {
			vals := bound[in.id].vals
			if in.id == scatterPort {
				vals = vals[i : i+1]
			} else if !in.typ.array && len(vals) != 1 {
				return nil, fmt.Errorf("cwl: step %q input %q is not an array but receives %d values", st.id, in.id, len(vals))
			}
			task.Env[in.id] = strings.Join(vals, " ")
			if !in.typ.file {
				task.Meta["value:"+in.id] = strings.Join(vals, " ")
				continue
			}
			for _, v := range vals {
				paths := []string{v}
				for _, pat := range in.secondaryFiles {
					paths = append(paths, secondaryPath(v, pat))
				}
				for _, p := range paths {
					if !seen[p] {
						seen[p] = true
						task.Inputs = append(task.Inputs, p)
					}
				}
			}
		}
		for _, o := range t.outputs {
			task.OutputParams = append(task.OutputParams, o.id)
			size := prof.outSizeMB[o.id]
			if size <= 0 {
				size = 1
			}
			count := 1
			if o.typ.array {
				if c, ok := prof.outCount[o.id]; ok {
					count = c
				}
			}
			var fis []wf.FileInfo
			for j := 0; j < count; j++ {
				path := fmt.Sprintf("%s/%s_%d/%s", sanitize(name), t.id, task.ID, o.id)
				if o.typ.array {
					path = fmt.Sprintf("%s/%s_%d/%s_%02d", sanitize(name), t.id, task.ID, o.id, j)
				}
				fis = append(fis, wf.FileInfo{Path: path, SizeMB: size})
			}
			task.Declared[o.id] = fis
			paths := make([]string, len(fis))
			for j, fi := range fis {
				paths[j] = fi.Path
			}
			task.Env[o.id] = strings.Join(paths, " ")
			key := st.id + "/" + o.id
			produced[key] = append(produced[key], paths...)
		}
		tasks = append(tasks, task)
	}
	return tasks, nil
}

// sanitize maps a workflow name to a path-safe directory component, exactly
// like the Cuneiform frontend (shared scheme ⇒ comparable provenance).
func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
}
