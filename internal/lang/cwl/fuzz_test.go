package cwl

import "testing"

// FuzzParse throws arbitrary bytes at the CWL frontend: no input may panic,
// whatever the JSON decoder makes of it. Seeds are the full-subset sample
// workflow the unit tests use plus fragments around the parser's edges —
// scatter, $graph resolution, map-form listings, and resource hints.
func FuzzParse(f *testing.F) {
	f.Add(sampleCWL)
	f.Add(`{"cwlVersion": "v1.2", "class": "CommandLineTool", "id": "t",
	       "baseCommand": "go", "inputs": [], "outputs": [{"id": "out", "type": "File"}]}`)
	f.Add(`{"cwlVersion": "v1.2", "$graph": [{"class": "Workflow", "id": "w",
	       "steps": [{"id": "s", "run": "#missing", "out": []}]}]}`)
	f.Add(`{"cwlVersion": "v1.2", "$graph": [{"class": "Workflow", "id": "w",
	       "inputs": {"x": {"type": "File[]"}}, "steps": {}}]}`)
	f.Add(`{"cwlVersion": "v1.2", "class": "CommandLineTool", "id": "t",
	       "hints": [{"class": "hiway:Profile", "outCount": {"out": 99999999}}],
	       "inputs": [], "outputs": [{"id": "out", "type": "File[]"}]}`)
	f.Add(`not json at all`)
	f.Add(`{"$graph": []}`)
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = NewDriver("fuzz", src, Options{}).Parse()
	})
}
