package dax

import (
	"strings"
	"testing"

	"hiway/internal/wf"
)

const sampleDAX = `<?xml version="1.0" encoding="UTF-8"?>
<adag xmlns="http://pegasus.isi.edu/schema/DAX" name="diamond" version="2.1">
  <job id="ID0001" namespace="montage" name="mProject" runtime="30" threads="2" memMB="512">
    <argument>-X region.hdr</argument>
    <uses file="region.hdr" link="input" sizeMB="0.5"/>
    <uses file="img1.fits" link="input" size="104857600"/>
    <uses file="proj1.fits" link="output" sizeMB="120"/>
  </job>
  <job id="ID0002" name="mProject" runtime="30">
    <uses file="region.hdr" link="input" sizeMB="0.5"/>
    <uses file="img2.fits" link="input" size="104857600"/>
    <uses file="proj2.fits" link="output" sizeMB="120"/>
  </job>
  <job id="ID0003" name="mAdd" runtime="60">
    <uses file="proj1.fits" link="input"/>
    <uses file="proj2.fits" link="input"/>
    <uses file="mosaic.fits" link="output" sizeMB="200"/>
  </job>
  <child ref="ID0003">
    <parent ref="ID0001"/>
    <parent ref="ID0002"/>
  </child>
</adag>`

func TestParseSampleDAX(t *testing.T) {
	d := NewDriver("diamond", sampleDAX, Options{})
	ready, err := d.Parse()
	if err != nil {
		t.Fatal(err)
	}
	if len(ready) != 2 {
		t.Fatalf("initially ready = %d, want 2 projections", len(ready))
	}
	all := d.Graph().All()
	if len(all) != 3 {
		t.Fatalf("tasks = %d", len(all))
	}
	proj := all[0]
	if proj.Name != "mProject" || proj.CPUSeconds != 30 || proj.Threads != 2 || proj.MemMB != 512 {
		t.Fatalf("job attrs not parsed: %+v", proj)
	}
	if len(proj.Inputs) != 2 {
		t.Fatalf("inputs = %v", proj.Inputs)
	}
	if got := proj.Declared["out"][0]; got.Path != "proj1.fits" || got.SizeMB != 120 {
		t.Fatalf("output = %+v", got)
	}
	if !strings.Contains(proj.Command, "mProject") || !strings.Contains(proj.Command, "region.hdr") {
		t.Fatalf("command = %q", proj.Command)
	}
	// Byte size conversion: 104857600 B = 100 MB, recorded on the input
	// side only (inputs are paths; sizes live with the producer/staging).
	init := d.Graph().InitialInputs()
	want := []string{"img1.fits", "img2.fits", "region.hdr"}
	if len(init) != 3 {
		t.Fatalf("initial inputs = %v, want %v", init, want)
	}
	// The join waits for both parents (data edges AND explicit edges).
	add := all[2]
	if len(d.Graph().Predecessors(add)) != 2 {
		t.Fatalf("mAdd predecessors = %v", d.Graph().Predecessors(add))
	}
}

func TestExecutionOrder(t *testing.T) {
	d := NewDriver("diamond", sampleDAX, Options{})
	ready, err := d.Parse()
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	for len(ready) > 0 {
		task := ready[0]
		ready = ready[1:]
		done++
		res := &wf.TaskResult{Task: task, Outputs: map[string][]wf.FileInfo{"out": task.Declared["out"]}}
		next, err := d.OnTaskComplete(res)
		if err != nil {
			t.Fatal(err)
		}
		ready = append(ready, next...)
	}
	if done != 3 || !d.Done() {
		t.Fatalf("done=%d finished=%v", done, d.Done())
	}
	outs := d.Outputs()
	if len(outs) != 1 || outs[0] != "mosaic.fits" {
		t.Fatalf("outputs = %v", outs)
	}
}

func TestProfileFallback(t *testing.T) {
	src := `<adag name="p">
  <job id="J1" name="mytool">
    <uses file="in.dat" link="input"/>
    <uses file="out.dat" link="output"/>
  </job>
</adag>`
	d := NewDriver("p", src, Options{Profiles: map[string]wf.Profile{
		"mytool": {CPUSeconds: 77, Threads: 3, MemMB: 2048, OutputSizeMB: 42},
	}})
	if _, err := d.Parse(); err != nil {
		t.Fatal(err)
	}
	task := d.Graph().All()[0]
	if task.CPUSeconds != 77 || task.Threads != 3 || task.MemMB != 2048 {
		t.Fatalf("profile not applied: %+v", task)
	}
	if task.Declared["out"][0].SizeMB != 42 {
		t.Fatalf("output size = %+v", task.Declared["out"])
	}
}

func TestExplicitRuntimeWinsOverProfile(t *testing.T) {
	src := `<adag name="p">
  <job id="J1" name="mytool" runtime="5">
    <uses file="out.dat" link="output" sizeMB="7"/>
  </job>
</adag>`
	d := NewDriver("p", src, Options{Profiles: map[string]wf.Profile{
		"mytool": {CPUSeconds: 77, OutputSizeMB: 42},
	}})
	if _, err := d.Parse(); err != nil {
		t.Fatal(err)
	}
	task := d.Graph().All()[0]
	if task.CPUSeconds != 5 || task.Declared["out"][0].SizeMB != 7 {
		t.Fatalf("explicit annotations lost: %+v", task)
	}
}

func TestDefaultsWhenUnannotated(t *testing.T) {
	src := `<adag name="p">
  <job id="J1" name="anon">
    <uses file="out.dat" link="output"/>
  </job>
</adag>`
	d := NewDriver("p", src, Options{})
	if _, err := d.Parse(); err != nil {
		t.Fatal(err)
	}
	task := d.Graph().All()[0]
	if task.Threads != 1 {
		t.Fatalf("threads = %d, want default 1", task.Threads)
	}
	if task.Declared["out"][0].SizeMB != 1 {
		t.Fatalf("default output size = %+v", task.Declared["out"])
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"not xml":        `{"json": true}`,
		"no jobs":        `<adag name="x"></adag>`,
		"missing id":     `<adag><job name="a"><uses file="o" link="output"/></job></adag>`,
		"missing name":   `<adag><job id="J"><uses file="o" link="output"/></job></adag>`,
		"duplicate id":   `<adag><job id="J" name="a"><uses file="o1" link="output"/></job><job id="J" name="b"><uses file="o2" link="output"/></job></adag>`,
		"bad link":       `<adag><job id="J" name="a"><uses file="o" link="sideways"/></job></adag>`,
		"empty file":     `<adag><job id="J" name="a"><uses file="" link="output"/></job></adag>`,
		"unknown child":  `<adag><job id="J" name="a"><uses file="o" link="output"/></job><child ref="NOPE"><parent ref="J"/></child></adag>`,
		"unknown parent": `<adag><job id="J" name="a"><uses file="o" link="output"/></job><child ref="J"><parent ref="NOPE"/></child></adag>`,
		"dangling input": `<adag><job id="J" name="a"><uses file="ghost-not-initial" link="input"/><uses file="o" link="output"/></job><job id="K" name="b"><uses file="o" link="input"/><uses file="ghost-not-initial" link="output"/></job></adag>`,
	}
	for name, src := range cases {
		d := NewDriver(name, src, Options{})
		if _, err := d.Parse(); err == nil {
			t.Errorf("%s: Parse should fail", name)
		}
	}
}
