package dax

import "testing"

// FuzzParse throws arbitrary bytes at the Pegasus DAX frontend: no input may
// panic, whatever the XML decoder makes of it. Seeds are the sample workflow
// the unit tests use plus malformed fragments around the decoder's edges.
func FuzzParse(f *testing.F) {
	f.Add(sampleDAX)
	f.Add(`<?xml version="1.0"?><adag></adag>`)
	f.Add(`<adag><job id="a" name="t"><uses link="output" file="f"/></job>`)
	f.Add(`<adag><child ref="missing"><parent ref="also-missing"/></child></adag>`)
	f.Add(`not xml at all`)
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = NewDriver("fuzz", src, Options{}).Parse()
	})
}
