// Package dax parses Pegasus DAX workflows — the static XML workflow
// language of the Pegasus SWfMS (§3.2 of the paper). A DAX file explicitly
// lists every job, every file each job uses (link="input"/"output"), and
// explicit parent/child control edges. Hi-WAY complements Pegasus by
// running DAX workflows on (simulated) Hadoop YARN.
//
// Resource annotations: jobs may carry runtime (reference core-seconds),
// threads and memMB attributes — the convention of DAX generators such as
// the Montage toolkit wrapper in this repository. <uses> elements may carry
// size (bytes, as Pegasus writes) or sizeMB. For jobs without annotations a
// per-tool Profile registry supplies the resource model.
package dax

import (
	"encoding/xml"
	"fmt"
	"strings"

	"hiway/internal/wf"
)

// xmlADAG mirrors the DAX <adag> document structure.
type xmlADAG struct {
	XMLName xml.Name   `xml:"adag"`
	Name    string     `xml:"name,attr"`
	Jobs    []xmlJob   `xml:"job"`
	Childs  []xmlChild `xml:"child"`
}

type xmlJob struct {
	ID       string    `xml:"id,attr"`
	Name     string    `xml:"name,attr"`
	Nspace   string    `xml:"namespace,attr"`
	Runtime  float64   `xml:"runtime,attr"`
	Threads  int       `xml:"threads,attr"`
	MemMB    int       `xml:"memMB,attr"`
	Argument string    `xml:"argument"`
	Uses     []xmlUses `xml:"uses"`
}

type xmlUses struct {
	File   string  `xml:"file,attr"`
	Link   string  `xml:"link,attr"`
	Size   float64 `xml:"size,attr"`   // bytes, Pegasus convention
	SizeMB float64 `xml:"sizeMB,attr"` // explicit megabytes, wins over Size
}

type xmlChild struct {
	Ref     string      `xml:"ref,attr"`
	Parents []xmlParent `xml:"parent"`
}

type xmlParent struct {
	Ref string `xml:"ref,attr"`
}

// Options configures parsing.
type Options struct {
	// Profiles supplies resource models by job name for jobs without
	// explicit runtime annotations.
	Profiles map[string]wf.Profile
}

// NewDriver returns a static driver for the DAX document src.
func NewDriver(name, src string, opts Options) *Driver {
	d := &Driver{opts: opts}
	d.WFName = name
	d.Build = func() ([]*wf.Task, []string, []wf.Edge, error) {
		return build(name, src, opts)
	}
	return d
}

// Driver executes DAX workflows; it is a wf.StaticDriver, so static
// scheduling policies (HEFT, round-robin) apply.
type Driver struct {
	wf.StaticBase
	opts Options
}

func build(name, src string, opts Options) ([]*wf.Task, []string, []wf.Edge, error) {
	var doc xmlADAG
	dec := xml.NewDecoder(strings.NewReader(src))
	if err := dec.Decode(&doc); err != nil {
		return nil, nil, nil, fmt.Errorf("dax: parsing %s: %w", name, err)
	}
	if len(doc.Jobs) == 0 {
		return nil, nil, nil, fmt.Errorf("dax: workflow %s declares no jobs", name)
	}

	byDaxID := make(map[string]*wf.Task, len(doc.Jobs))
	produced := make(map[string]bool)
	consumed := make(map[string]bool)
	var tasks []*wf.Task
	for _, j := range doc.Jobs {
		if j.ID == "" || j.Name == "" {
			return nil, nil, nil, fmt.Errorf("dax: job with missing id or name in %s", name)
		}
		if _, dup := byDaxID[j.ID]; dup {
			return nil, nil, nil, fmt.Errorf("dax: duplicate job id %q", j.ID)
		}
		t := &wf.Task{
			ID:           wf.NextID(),
			Name:         j.Name,
			Command:      strings.TrimSpace(strings.Join([]string{j.Nspace, j.Name, strings.TrimSpace(j.Argument)}, " ")),
			CPUSeconds:   j.Runtime,
			Threads:      j.Threads,
			MemMB:        j.MemMB,
			OutputParams: []string{"out"},
			Declared:     map[string][]wf.FileInfo{},
			Meta:         map[string]string{"daxID": j.ID, "workflow": name},
		}
		for _, u := range j.Uses {
			if u.File == "" {
				return nil, nil, nil, fmt.Errorf("dax: job %q uses a file with no name", j.ID)
			}
			sizeMB := u.SizeMB
			if sizeMB == 0 && u.Size > 0 {
				sizeMB = u.Size / (1024 * 1024)
			}
			switch strings.ToLower(u.Link) {
			case "input":
				t.Inputs = append(t.Inputs, u.File)
				consumed[u.File] = true
			case "output":
				t.Declared["out"] = append(t.Declared["out"], wf.FileInfo{Path: u.File, SizeMB: sizeMB})
				produced[u.File] = true
			default:
				return nil, nil, nil, fmt.Errorf("dax: job %q uses %q with unknown link %q", j.ID, u.File, u.Link)
			}
		}
		if p, ok := opts.Profiles[j.Name]; ok {
			p.ApplyTo(t)
		}
		if t.Threads == 0 {
			t.Threads = 1
		}
		// Unsized outputs default to 1 MB so simulation stays meaningful.
		for i := range t.Declared["out"] {
			if t.Declared["out"][i].SizeMB == 0 {
				t.Declared["out"][i].SizeMB = 1
			}
		}
		byDaxID[j.ID] = t
		tasks = append(tasks, t)
	}

	// Initial inputs: consumed but never produced.
	var initial []string
	seen := map[string]bool{}
	for _, t := range tasks {
		for _, in := range t.Inputs {
			if !produced[in] && !seen[in] {
				seen[in] = true
				initial = append(initial, in)
			}
		}
	}

	// Explicit control edges.
	var edges []wf.Edge
	for _, ch := range doc.Childs {
		child, ok := byDaxID[ch.Ref]
		if !ok {
			return nil, nil, nil, fmt.Errorf("dax: <child ref=%q> names an unknown job", ch.Ref)
		}
		for _, par := range ch.Parents {
			parent, ok := byDaxID[par.Ref]
			if !ok {
				return nil, nil, nil, fmt.Errorf("dax: <parent ref=%q> names an unknown job", par.Ref)
			}
			edges = append(edges, wf.Edge{Parent: parent.ID, Child: child.ID})
		}
	}
	return tasks, initial, edges, nil
}
