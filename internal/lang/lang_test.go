package lang

import (
	"strings"
	"testing"
)

func TestDetectByExtension(t *testing.T) {
	cases := map[string]string{
		"wf.cf":        Cuneiform,
		"wf.CUNEIFORM": Cuneiform,
		"wf.dax":       DAX,
		"wf.xml":       DAX,
		"wf.ga":        Galaxy,
		"wf.cwl":       CWL,
		"run.jsonl":    Trace,
		"run.trace":    Trace,
	}
	for path, want := range cases {
		if got := Detect(path, "whatever"); got != want {
			t.Errorf("Detect(%q) = %q, want %q", path, got, want)
		}
	}
}

func TestDetectByContent(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`{"cwlVersion": "v1.2", "class": "CommandLineTool"}`, CWL},
		{"cwlVersion: v1.2\nclass: Workflow\n", CWL},
		{`<?xml version="1.0"?><adag name="x"></adag>`, DAX},
		{`<adag name="x"></adag>`, DAX},
		{`{"a_galaxy_workflow": "true", "steps": {}}`, Galaxy},
		{`{"type":"task-end","task":1,"signature":"t"}`, Trace},
		{`deftask t( out : ) in bash *{ true }* t();`, Cuneiform},
		{``, Cuneiform},
	}
	for _, c := range cases {
		if got := Detect("wf", c.src); got != c.want {
			t.Errorf("Detect(content %.30q) = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestKnownAndRegistry(t *testing.T) {
	names := Known()
	if len(names) != 5 {
		t.Fatalf("Known() = %v, want 5 languages", names)
	}
	for _, n := range names {
		if !IsKnown(n) {
			t.Errorf("IsKnown(%q) = false for a Known() entry", n)
		}
	}
	if IsKnown("klingon") {
		t.Error("IsKnown accepted an unregistered language")
	}
	if _, err := NewDriver("klingon", "w", "", nil); err == nil {
		t.Error("NewDriver accepted an unregistered language")
	} else if !strings.Contains(err.Error(), "cuneiform") {
		t.Errorf("unknown-language error should list the registry, got %v", err)
	}
}

// TestNewDriverParsesEveryLanguage exercises the registry end to end: a
// minimal valid source per language must yield a driver whose Parse
// succeeds.
func TestNewDriverParsesEveryLanguage(t *testing.T) {
	sources := map[string]string{
		Cuneiform: "deftask t( out : ~x ) in bash *{ true }*\nt( x: \"1\" );",
		Galaxy: `{"a_galaxy_workflow": "true", "name": "g", "steps": {
		          "0": {"id": 0, "type": "data_input", "label": "reads", "inputs": [{"name": "reads"}], "outputs": []},
		          "1": {"id": 1, "type": "tool", "tool_id": "t",
		                "input_connections": {"in": {"id": 0, "output_name": "output"}},
		                "outputs": [{"name": "o", "type": "txt"}]}}}`,
		DAX:   `<adag name="x"><job id="J" name="t" runtime="1"><uses file="o" link="output"/></job></adag>`,
		Trace: `{"type":"task-end","taskId":1,"signature":"t","outputs":[{"path":"o","param":"out"}]}`,
		CWL: `{"cwlVersion": "v1.2", "class": "CommandLineTool", "id": "t",
		      "baseCommand": "true",
		      "inputs": [], "outputs": [{"id": "out", "type": "File"}]}`,
	}
	binds := map[string]string{"reads": "/data/r.fq"}
	for language, src := range sources {
		d, err := NewDriver(language, "w", src, binds)
		if err != nil {
			t.Fatalf("%s: NewDriver: %v", language, err)
		}
		if _, err := d.Parse(); err != nil {
			t.Fatalf("%s: Parse: %v", language, err)
		}
		if got := d.Name(); got != "w" {
			t.Errorf("%s: Name() = %q, want w", language, got)
		}
	}
}
