package trace

import (
	"testing"

	"hiway/internal/provenance"
	"hiway/internal/wf"
)

// recordedRun builds the trace of a two-step chain: align(in.fq → a.bam),
// call(a.bam → a.vcf).
func recordedRun() []provenance.Event {
	return []provenance.Event{
		{Type: provenance.WorkflowStart, WorkflowID: "wf1", WorkflowName: "snv"},
		{
			Type: provenance.TaskEnd, WorkflowID: "wf1", TaskID: 1,
			Signature: "align", Command: "bowtie2 in.fq", Node: "node-03",
			CPUSeconds: 100, Threads: 4, MemMB: 2048, DurationSec: 111,
			Inputs:  []provenance.FileEvent{{Path: "in.fq", SizeMB: 50}},
			Outputs: []provenance.FileEvent{{Path: "a.bam", SizeMB: 80, Param: "out"}},
		},
		{
			Type: provenance.TaskEnd, WorkflowID: "wf1", TaskID: 2,
			Signature: "call", Command: "varscan a.bam", Node: "node-01",
			CPUSeconds: 60, Threads: 1, DurationSec: 66,
			Inputs:  []provenance.FileEvent{{Path: "a.bam", SizeMB: 80}},
			Outputs: []provenance.FileEvent{{Path: "a.vcf", SizeMB: 2, Param: "out"}},
		},
		{Type: provenance.WorkflowEnd, WorkflowID: "wf1", DurationSec: 200, Succeeded: true},
	}
}

func TestReplayFromEvents(t *testing.T) {
	tasks, initial, edges, err := FromEvents(recordedRun())
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 2 || len(edges) != 0 {
		t.Fatalf("tasks=%d edges=%d", len(tasks), len(edges))
	}
	if len(initial) != 1 || initial[0] != "in.fq" {
		t.Fatalf("initial inputs = %v", initial)
	}
	align := tasks[0]
	if align.Name != "align" || align.CPUSeconds != 100 || align.Threads != 4 || align.MemMB != 2048 {
		t.Fatalf("profile not replayed: %+v", align)
	}
	if align.Meta["recordedNode"] != "node-03" {
		t.Fatalf("meta = %v", align.Meta)
	}
	if align.Declared["out"][0] != (wf.FileInfo{Path: "a.bam", SizeMB: 80}) {
		t.Fatalf("outputs = %+v", align.Declared)
	}
}

func TestDriverExecutesSameDAG(t *testing.T) {
	store := provenance.NewMemStore()
	for _, ev := range recordedRun() {
		store.Append(ev)
	}
	d := NewDriverFromStore("replay", store)
	ready, err := d.Parse()
	if err != nil {
		t.Fatal(err)
	}
	if len(ready) != 1 || ready[0].Name != "align" {
		t.Fatalf("ready = %v", ready)
	}
	res := &wf.TaskResult{Task: ready[0], Outputs: map[string][]wf.FileInfo{"out": ready[0].Declared["out"]}}
	next, err := d.OnTaskComplete(res)
	if err != nil || len(next) != 1 || next[0].Name != "call" {
		t.Fatalf("next = %v err = %v", next, err)
	}
	res2 := &wf.TaskResult{Task: next[0], Outputs: map[string][]wf.FileInfo{"out": next[0].Declared["out"]}}
	if _, err := d.OnTaskComplete(res2); err != nil {
		t.Fatal(err)
	}
	if !d.Done() {
		t.Fatal("replay should finish")
	}
	outs := d.Outputs()
	if len(outs) != 1 || outs[0] != "a.vcf" {
		t.Fatalf("outputs = %v", outs)
	}
}

func TestDriverFromJSONLText(t *testing.T) {
	text := `{"type":"task-end","taskId":1,"signature":"solo","cpuSeconds":5,"outputs":[{"path":"o.dat","sizeMB":1,"param":"out"}]}` + "\n"
	d := NewDriver("replay", text)
	ready, err := d.Parse()
	if err != nil {
		t.Fatal(err)
	}
	if len(ready) != 1 || ready[0].Name != "solo" || ready[0].Threads != 1 {
		t.Fatalf("ready = %+v", ready)
	}
}

func TestFailedTaskRejectsReplay(t *testing.T) {
	events := recordedRun()
	events[2].ExitCode = 1
	if _, _, _, err := FromEvents(events); err == nil {
		t.Fatal("trace with a failed task must be rejected")
	}
}

func TestDuplicateOutputRejected(t *testing.T) {
	events := recordedRun()
	events[2].Outputs[0].Path = "a.bam" // same as task 1's output
	if _, _, _, err := FromEvents(events); err == nil {
		t.Fatal("duplicate producer must be rejected")
	}
}

func TestEmptyTraceRejected(t *testing.T) {
	if _, _, _, err := FromEvents(nil); err == nil {
		t.Fatal("empty trace must be rejected")
	}
	d := NewDriver("x", "not json")
	if _, err := d.Parse(); err == nil {
		t.Fatal("bad JSONL must be rejected")
	}
}

func TestDefaultParamAndOutputParamFallback(t *testing.T) {
	events := []provenance.Event{{
		Type: provenance.TaskEnd, TaskID: 1, Signature: "t",
		Outputs: []provenance.FileEvent{{Path: "o1"}, {Path: "o2"}},
	}}
	tasks, _, _, err := FromEvents(events)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks[0].OutputParams) != 1 || tasks[0].OutputParams[0] != "out" {
		t.Fatalf("params = %v", tasks[0].OutputParams)
	}
	if len(tasks[0].Declared["out"]) != 2 {
		t.Fatalf("outputs = %v", tasks[0].Declared)
	}
}
