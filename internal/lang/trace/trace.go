// Package trace interprets Hi-WAY provenance traces as executable
// workflows — the paper's fourth supported workflow language (§3.5). A
// trace file records every task of a run with its command, consumed and
// produced files, and resource profile; replaying it re-executes the same
// task graph, though not necessarily on the same compute nodes.
package trace

import (
	"fmt"

	"hiway/internal/provenance"
	"hiway/internal/wf"
)

// Driver executes a provenance trace; it is a wf.StaticDriver, because the
// replayed task graph is fully known upfront.
type Driver struct {
	wf.StaticBase
}

// NewDriver builds a driver for a JSONL trace text.
func NewDriver(name, traceText string) *Driver {
	d := &Driver{}
	d.WFName = name
	d.Build = func() ([]*wf.Task, []string, []wf.Edge, error) {
		events, err := provenance.ParseTrace(traceText)
		if err != nil {
			return nil, nil, nil, err
		}
		return FromEvents(events)
	}
	return d
}

// NewDriverFromStore builds a driver replaying the contents of a
// provenance store.
func NewDriverFromStore(name string, store provenance.Store) *Driver {
	d := &Driver{}
	d.WFName = name
	d.Build = func() ([]*wf.Task, []string, []wf.Edge, error) {
		events, err := store.Events()
		if err != nil {
			return nil, nil, nil, err
		}
		return FromEvents(events)
	}
	return d
}

// FromEvents reconstructs the task graph from task-end events. Only
// successful tasks are replayed; a trace containing a failed task is
// rejected, since its downstream products never existed.
func FromEvents(events []provenance.Event) ([]*wf.Task, []string, []wf.Edge, error) {
	var tasks []*wf.Task
	produced := make(map[string]bool)
	for _, ev := range events {
		if ev.Type != provenance.TaskEnd {
			continue
		}
		if ev.ExitCode != 0 || ev.Error != "" {
			return nil, nil, nil, fmt.Errorf("trace: task %d (%s) failed in the recorded run; trace is not replayable", ev.TaskID, ev.Signature)
		}
		t := &wf.Task{
			ID:         wf.NextID(),
			Name:       ev.Signature,
			Command:    ev.Command,
			CPUSeconds: ev.CPUSeconds,
			Threads:    ev.Threads,
			MemMB:      ev.MemMB,
			Declared:   map[string][]wf.FileInfo{},
			Meta: map[string]string{
				"replayOf":     fmt.Sprint(ev.TaskID),
				"recordedNode": ev.Node,
			},
		}
		if t.Threads == 0 {
			t.Threads = 1
		}
		for _, in := range ev.Inputs {
			t.Inputs = append(t.Inputs, in.Path)
		}
		seenParam := map[string]bool{}
		for _, out := range ev.Outputs {
			param := out.Param
			if param == "" {
				param = "out"
			}
			if !seenParam[param] {
				seenParam[param] = true
				t.OutputParams = append(t.OutputParams, param)
			}
			if produced[out.Path] {
				return nil, nil, nil, fmt.Errorf("trace: file %s produced twice", out.Path)
			}
			produced[out.Path] = true
			t.Declared[param] = append(t.Declared[param], wf.FileInfo{Path: out.Path, SizeMB: out.SizeMB})
		}
		if len(t.OutputParams) == 0 {
			t.OutputParams = []string{"out"}
		}
		tasks = append(tasks, t)
	}
	if len(tasks) == 0 {
		return nil, nil, nil, fmt.Errorf("trace: no task-end events found")
	}
	// Initial inputs: consumed but never produced. Running a trace
	// requires this input data to be present, just like the original run
	// (§3.6).
	var initial []string
	seen := map[string]bool{}
	for _, t := range tasks {
		for _, in := range t.Inputs {
			if !produced[in] && !seen[in] {
				seen[in] = true
				initial = append(initial, in)
			}
		}
	}
	return tasks, initial, nil, nil
}
