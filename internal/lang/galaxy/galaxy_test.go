package galaxy

import (
	"testing"

	"hiway/internal/wf"
)

const sampleGalaxy = `{
  "a_galaxy_workflow": "true",
  "name": "rnaseq",
  "steps": {
    "0": {"id": 0, "type": "data_input", "label": "reads", "inputs": [{"name": "reads"}], "outputs": []},
    "1": {"id": 1, "type": "data_input", "inputs": [{"name": "genome"}], "outputs": []},
    "2": {"id": 2, "type": "tool", "tool_id": "toolshed.g2.bx.psu.edu/repos/devteam/tophat2/tophat2/2.1.0",
          "name": "TopHat2",
          "input_connections": {"input1": {"id": 0, "output_name": "output"}, "reference": {"id": 1, "output_name": "output"}},
          "outputs": [{"name": "accepted_hits", "type": "bam"}, {"name": "junctions", "type": "bed"}]},
    "3": {"id": 3, "type": "tool", "tool_id": "cufflinks",
          "input_connections": {"input": {"id": 2, "output_name": "accepted_hits"}},
          "outputs": [{"name": "assembly", "type": "gtf"}]}
  }
}`

func opts() Options {
	return Options{
		Inputs: map[string]string{
			"reads":  "/data/reads.fastq",
			"genome": "/data/mm10.fa",
		},
		Profiles: map[string]wf.Profile{
			"tophat2":   {CPUSeconds: 600, Threads: 8, MemMB: 8192, OutputSizeMB: 900},
			"cufflinks": {CPUSeconds: 300, Threads: 4, MemMB: 4096, OutputSizeMB: 80},
		},
	}
}

func TestParseSampleGalaxy(t *testing.T) {
	d := NewDriver("rnaseq", sampleGalaxy, opts())
	ready, err := d.Parse()
	if err != nil {
		t.Fatal(err)
	}
	if len(ready) != 1 || ready[0].Name != "tophat2" {
		t.Fatalf("ready = %v", ready)
	}
	th := ready[0]
	if len(th.Inputs) != 2 || th.Inputs[0] != "/data/reads.fastq" || th.Inputs[1] != "/data/mm10.fa" {
		t.Fatalf("tophat inputs = %v", th.Inputs)
	}
	if th.CPUSeconds != 600 || th.Threads != 8 || th.MemMB != 8192 {
		t.Fatalf("profile not applied: %+v", th)
	}
	if len(th.Declared["out"]) != 2 {
		t.Fatalf("tophat outputs = %v", th.Declared["out"])
	}
	if th.Declared["out"][0].SizeMB != 900 {
		t.Fatalf("output size = %+v", th.Declared["out"])
	}
	// cufflinks consumes exactly tophat's accepted_hits output path.
	all := d.Graph().All()
	cl := all[1]
	if cl.Name != "cufflinks" || len(cl.Inputs) != 1 || cl.Inputs[0] != th.Declared["out"][0].Path {
		t.Fatalf("cufflinks = %+v (tophat outs %v)", cl, th.Declared["out"])
	}
}

func TestExecutionToCompletion(t *testing.T) {
	d := NewDriver("rnaseq", sampleGalaxy, opts())
	ready, err := d.Parse()
	if err != nil {
		t.Fatal(err)
	}
	for len(ready) > 0 {
		task := ready[0]
		ready = ready[1:]
		res := &wf.TaskResult{Task: task, Outputs: map[string][]wf.FileInfo{"out": task.Declared["out"]}}
		next, err := d.OnTaskComplete(res)
		if err != nil {
			t.Fatal(err)
		}
		ready = append(ready, next...)
	}
	if !d.Done() {
		t.Fatal("workflow should be done")
	}
	outs := d.Outputs()
	if len(outs) != 1 {
		t.Fatalf("outputs = %v", outs)
	}
}

func TestUnboundInputRejected(t *testing.T) {
	o := opts()
	delete(o.Inputs, "genome")
	d := NewDriver("rnaseq", sampleGalaxy, o)
	if _, err := d.Parse(); err == nil {
		t.Fatal("unbound input must be rejected (resolved interactively in real Hi-WAY)")
	}
}

func TestInputKeyFallbacks(t *testing.T) {
	if k := inputKey(jsonStep{ID: 7, Label: "lbl"}); k != "lbl" {
		t.Fatalf("key = %q", k)
	}
	if k := inputKey(jsonStep{ID: 7, Inputs: []jsonStepInput{{Name: "nm"}}}); k != "nm" {
		t.Fatalf("key = %q", k)
	}
	if k := inputKey(jsonStep{ID: 7}); k != "input_7" {
		t.Fatalf("key = %q", k)
	}
}

func TestLookupProfileToolshedID(t *testing.T) {
	profiles := map[string]wf.Profile{"tophat2": {CPUSeconds: 1}}
	if _, ok := lookupProfile(profiles, "toolshed/repos/devteam/tophat2/tophat2/2.1.0"); !ok {
		t.Fatal("toolshed id should resolve")
	}
	if _, ok := lookupProfile(profiles, "unrelated"); ok {
		t.Fatal("unrelated id should not resolve")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"not json":       `<xml/>`,
		"no steps":       `{"steps": {}}`,
		"no tool id":     `{"steps": {"0": {"id": 0, "type": "tool", "outputs": [{"name":"o"}]}}}`,
		"no outputs":     `{"steps": {"0": {"id": 0, "type": "tool", "tool_id": "t"}}}`,
		"bad type":       `{"steps": {"0": {"id": 0, "type": "subworkflow"}}}`,
		"unknown source": `{"steps": {"0": {"id": 0, "type": "tool", "tool_id": "t", "outputs": [{"name":"o"}], "input_connections": {"x": {"id": 9, "output_name": "output"}}}}}`,
		"missing output": `{"steps": {
			"0": {"id": 0, "type": "tool", "tool_id": "t", "outputs": [{"name":"o"}]},
			"1": {"id": 1, "type": "tool", "tool_id": "u", "outputs": [{"name":"p"}], "input_connections": {"x": {"id": 0, "output_name": "nope"}}}}}`,
		"only inputs": `{"steps": {"0": {"id": 0, "type": "data_input", "label": "a", "outputs": []}}}`,
	}
	for name, src := range cases {
		o := Options{Inputs: map[string]string{"a": "/p"}}
		d := NewDriver(name, src, o)
		if _, err := d.Parse(); err == nil {
			t.Errorf("%s: Parse should fail", name)
		}
	}
}
