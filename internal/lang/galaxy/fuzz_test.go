package galaxy

import "testing"

// FuzzParse throws arbitrary bytes at the Galaxy workflow frontend: no input
// may panic, whatever the JSON decoder makes of it. Seeds are the sample
// workflow the unit tests use plus fragments around the step-graph edges.
func FuzzParse(f *testing.F) {
	f.Add(sampleGalaxy)
	f.Add(`{}`)
	f.Add(`{"a_galaxy_workflow":"true","steps":{}}`)
	f.Add(`{"steps":{"0":{"type":"data_input","inputs":[{"name":"x"}]}}}`)
	f.Add(`{"steps":{"1":{"input_connections":{"in":{"id":99,"output_name":"out"}}}}}`)
	f.Add(`not json`)
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = NewDriver("fuzz", src, Options{}).Parse()
	})
}
