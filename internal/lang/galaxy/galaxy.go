// Package galaxy parses workflows exported from the Galaxy SWfMS (§3.2 of
// the paper): a JSON document with numbered steps, where data-input steps
// are placeholders for the workflow's input files and tool steps reference
// their upstream step through input_connections.
//
// As in Hi-WAY, the input placeholders are resolved when the workflow is
// committed for execution — here through Options.Inputs, which binds each
// input step's label to a concrete path. Resource profiles come from a
// per-tool registry, since Galaxy exports carry no resource annotations.
package galaxy

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"hiway/internal/wf"
)

type jsonWorkflow struct {
	Name  string              `json:"name"`
	Steps map[string]jsonStep `json:"steps"`
}

type jsonStep struct {
	ID               int                       `json:"id"`
	Type             string                    `json:"type"`
	Label            string                    `json:"label"`
	Name             string                    `json:"name"`
	ToolID           string                    `json:"tool_id"`
	Inputs           []jsonStepInput           `json:"inputs"`
	Outputs          []jsonStepOutput          `json:"outputs"`
	InputConnections map[string]jsonConnection `json:"input_connections"`
}

type jsonStepInput struct {
	Name string `json:"name"`
}

type jsonStepOutput struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

type jsonConnection struct {
	ID         int    `json:"id"`
	OutputName string `json:"output_name"`
}

// Options configures parsing.
type Options struct {
	// Inputs binds each data-input step (by label, falling back to its
	// first declared input name, falling back to "input_<id>") to a
	// concrete file path. Every input step must be bound.
	Inputs map[string]string
	// InputSizesMB optionally gives the size of each bound input path.
	InputSizesMB map[string]float64
	// Profiles supplies resource models by tool id (exact match, or the
	// tool id's last '/celled' component for Toolshed-style ids).
	Profiles map[string]wf.Profile
}

// Driver executes Galaxy workflows; it is a wf.StaticDriver.
type Driver struct {
	wf.StaticBase
}

// NewDriver returns a static driver for the exported workflow JSON src.
func NewDriver(name, src string, opts Options) *Driver {
	d := &Driver{}
	d.WFName = name
	d.Build = func() ([]*wf.Task, []string, []wf.Edge, error) {
		return build(name, src, opts)
	}
	return d
}

// inputKey derives the binding key for a data-input step.
func inputKey(s jsonStep) string {
	if s.Label != "" {
		return s.Label
	}
	if len(s.Inputs) > 0 && s.Inputs[0].Name != "" {
		return s.Inputs[0].Name
	}
	return fmt.Sprintf("input_%d", s.ID)
}

// lookupProfile resolves a tool id against the registry, tolerating
// Toolshed-style ids like "toolshed.g2/repos/devteam/tophat2/tophat2/2.1.0".
func lookupProfile(profiles map[string]wf.Profile, toolID string) (wf.Profile, bool) {
	if p, ok := profiles[toolID]; ok {
		return p, true
	}
	parts := strings.Split(toolID, "/")
	for i := len(parts) - 1; i >= 0; i-- {
		if p, ok := profiles[parts[i]]; ok {
			return p, true
		}
	}
	return wf.Profile{}, false
}

func build(name, src string, opts Options) ([]*wf.Task, []string, []wf.Edge, error) {
	var doc jsonWorkflow
	if err := json.Unmarshal([]byte(src), &doc); err != nil {
		return nil, nil, nil, fmt.Errorf("galaxy: parsing %s: %w", name, err)
	}
	if len(doc.Steps) == 0 {
		return nil, nil, nil, fmt.Errorf("galaxy: workflow %s has no steps", name)
	}

	// Deterministic step order.
	var steps []jsonStep
	for _, s := range doc.Steps {
		steps = append(steps, s)
	}
	sort.Slice(steps, func(i, j int) bool { return steps[i].ID < steps[j].ID })

	byID := make(map[int]jsonStep, len(steps))
	for _, s := range steps {
		if _, dup := byID[s.ID]; dup {
			return nil, nil, nil, fmt.Errorf("galaxy: duplicate step id %d", s.ID)
		}
		byID[s.ID] = s
	}

	// Resolve the path each (stepID, outputName) pair provides.
	outPath := make(map[string]string)
	key := func(id int, out string) string { return fmt.Sprintf("%d\x00%s", id, out) }

	var initial []string
	taskByStep := make(map[int]*wf.Task)
	var tasks []*wf.Task

	for _, s := range steps {
		switch s.Type {
		case "data_input", "data_collection_input":
			k := inputKey(s)
			path, ok := opts.Inputs[k]
			if !ok {
				return nil, nil, nil, fmt.Errorf("galaxy: input step %d (%q) is not bound — supply Options.Inputs[%q]", s.ID, k, k)
			}
			// Galaxy input steps nominally expose output "output".
			outPath[key(s.ID, "output")] = path
			if len(s.Outputs) > 0 {
				for _, o := range s.Outputs {
					outPath[key(s.ID, o.Name)] = path
				}
			}
			initial = append(initial, path)
		case "tool", "":
			if s.ToolID == "" {
				return nil, nil, nil, fmt.Errorf("galaxy: step %d has no tool_id", s.ID)
			}
			toolName := s.ToolID
			if idx := strings.LastIndex(toolName, "/"); idx >= 0 {
				// Toolshed ids end in /<toolname>/<version>; prefer the name.
				parts := strings.Split(s.ToolID, "/")
				if len(parts) >= 2 {
					toolName = parts[len(parts)-2]
				}
			}
			t := &wf.Task{
				ID:           wf.NextID(),
				Name:         toolName,
				Command:      s.ToolID,
				OutputParams: []string{"out"},
				Declared:     map[string][]wf.FileInfo{},
				Meta:         map[string]string{"galaxyStep": fmt.Sprint(s.ID), "workflow": name},
			}
			if len(s.Outputs) == 0 {
				return nil, nil, nil, fmt.Errorf("galaxy: tool step %d (%s) declares no outputs", s.ID, toolName)
			}
			for _, o := range s.Outputs {
				p := fmt.Sprintf("galaxy/%s/step%d_%s.%s", sanitize(name), s.ID, o.Name, orDefault(o.Type, "dat"))
				outPath[key(s.ID, o.Name)] = p
				t.Declared["out"] = append(t.Declared["out"], wf.FileInfo{Path: p})
			}
			taskByStep[s.ID] = t
			tasks = append(tasks, t)
		default:
			return nil, nil, nil, fmt.Errorf("galaxy: step %d has unsupported type %q", s.ID, s.Type)
		}
	}

	// Wire connections now that all outputs are known.
	for _, s := range steps {
		t, isTool := taskByStep[s.ID]
		if !isTool {
			continue
		}
		conns := make([]string, 0, len(s.InputConnections))
		for c := range s.InputConnections {
			conns = append(conns, c)
		}
		sort.Strings(conns)
		for _, cname := range conns {
			conn := s.InputConnections[cname]
			src, ok := byID[conn.ID]
			if !ok {
				return nil, nil, nil, fmt.Errorf("galaxy: step %d input %q references unknown step %d", s.ID, cname, conn.ID)
			}
			oname := conn.OutputName
			if oname == "" {
				oname = "output"
			}
			p, ok := outPath[key(src.ID, oname)]
			if !ok {
				return nil, nil, nil, fmt.Errorf("galaxy: step %d input %q references missing output %q of step %d", s.ID, cname, oname, conn.ID)
			}
			t.Inputs = append(t.Inputs, p)
		}
		if p, ok := lookupProfile(opts.Profiles, s.ToolID); ok {
			p.ApplyTo(t)
		}
		if t.Threads == 0 {
			t.Threads = 1
		}
		for i := range t.Declared["out"] {
			if t.Declared["out"][i].SizeMB == 0 {
				t.Declared["out"][i].SizeMB = 1
			}
		}
	}
	if len(tasks) == 0 {
		return nil, nil, nil, fmt.Errorf("galaxy: workflow %s has no tool steps", name)
	}
	sort.Strings(initial)
	return tasks, initial, nil, nil
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
}
