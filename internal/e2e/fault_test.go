package e2e

import (
	"fmt"
	"path/filepath"
	"sort"
	"testing"

	"hiway/internal/chaos"
	"hiway/internal/core"
	"hiway/internal/provdb"
	"hiway/internal/provenance"
	"hiway/internal/scheduler"
	"hiway/internal/wf"
	"hiway/internal/workloads"
)

func snvWorkload() (wf.Driver, []workloads.Input) {
	return workloads.SNV(workloads.SNVConfig{
		Samples: 2, FilesPerSample: 3, FileSizeMB: 32,
		AlignCPUSeconds: 30, SortCPUSeconds: 15, CallCPUSeconds: 30, AnnotateCPUSeconds: 10,
		RefLocal: true,
	})
}

// TestAMCrashResumeFromProvenance is the acceptance test for AM recovery:
// the AM dies mid-workflow with a durable provdb-backed provenance store;
// a new AM incarnation resumes against the reopened store on the same
// (surviving) cluster. Completed tasks must be reconstructed — not re-run,
// which provenance event counts prove — and the final outputs must match
// an uninterrupted reference run.
func TestAMCrashResumeFromProvenance(t *testing.T) {
	// Reference run: the same workflow without a crash.
	refDriver, inputs := snvWorkload()
	_, refEnv := newEnv(t, 4, nil, inputs)
	refRep, err := core.Run(refEnv, refDriver, scheduler.NewFCFS(), core.Config{ContainerVCores: 2, ContainerMemMB: 4096})
	if err != nil {
		t.Fatal(err)
	}
	totalTasks := len(refRep.Results)

	// Crash run: provenance goes to the embedded database, as a real
	// deployment would survive an AM process death.
	path := filepath.Join(t.TempDir(), "prov.db")
	db, err := provdb.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	store := provenance.NewDBStore(db)
	driver1, inputs := snvWorkload()
	eng, env := newEnv(t, 4, store, inputs)
	cfg := core.Config{WorkflowID: "snv-resume", ContainerVCores: 2, ContainerMemMB: 4096}
	am, err := core.Launch(env, driver1, scheduler.NewFCFS(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for ts := 5.0; am.CompletedTasks() < 2 && !am.Finished(); ts += 5 {
		eng.RunUntil(ts)
	}
	if am.Finished() {
		t.Fatal("workflow finished before the crash could be injected")
	}
	completedAtCrash := am.CompletedTasks()
	am.Kill()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// New AM incarnation: reopen the database; cluster and HDFS survive.
	db2, err := provdb.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	store2 := provenance.NewDBStore(db2)
	defer store2.Close()
	mgr, err := provenance.NewManager(store2)
	if err != nil {
		t.Fatal(err)
	}
	env.Prov = mgr
	driver2, _ := snvWorkload()
	am2, err := core.Resume(env, driver2, scheduler.NewFCFS(), cfg, store2)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	rep, err := am2.Report()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Succeeded {
		t.Fatal(rep.Err)
	}
	if rep.Recovered != completedAtCrash {
		t.Fatalf("recovered %d tasks, %d had completed at the crash", rep.Recovered, completedAtCrash)
	}
	if rep.Recovered+len(rep.Results) != totalTasks {
		t.Fatalf("recovered %d + executed %d != %d total tasks", rep.Recovered, len(rep.Results), totalTasks)
	}

	// No completed task re-executed: across both incarnations every task
	// succeeded exactly once.
	events, err := store2.Events()
	if err != nil {
		t.Fatal(err)
	}
	successes, resumes := 0, 0
	for _, ev := range events {
		if ev.Type == provenance.TaskEnd && ev.ExitCode == 0 && ev.Error == "" {
			successes++
		}
		if ev.Type == provenance.WorkflowResumed {
			resumes++
			if ev.Recovered != completedAtCrash {
				t.Fatalf("resume event recovered=%d, want %d", ev.Recovered, completedAtCrash)
			}
		}
	}
	if successes != totalTasks {
		t.Fatalf("%d successful task-end events across both incarnations, want %d (no re-execution)", successes, totalTasks)
	}
	if resumes != 1 {
		t.Fatalf("workflow-resumed events = %d, want 1", resumes)
	}

	// Identical, readable outputs.
	got := append([]string(nil), rep.Outputs...)
	want := append([]string(nil), refRep.Outputs...)
	sort.Strings(got)
	sort.Strings(want)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("outputs after resume = %v, reference = %v", got, want)
	}
	for _, out := range got {
		if !env.FS.Readable(out) {
			t.Fatalf("output %s not readable after resume", out)
		}
	}
}

// TestResumeDistinguishesSameSignatureSameInputs is the regression test for
// a recovery-matching bug the scenario verifier surfaced: two tasks sharing
// a signature AND an input set but producing different outputs (a fan-out)
// must not swap completion events on resume. The long twin is deliberately
// parsed first so that, were recovery keyed on signature+inputs alone, it
// would steal the short twin's recorded event, be marked complete without
// its output existing, and wedge the merge task's stage-in.
func TestResumeDistinguishesSameSignatureSameInputs(t *testing.T) {
	twins := func() wf.Driver {
		return &wf.StaticBase{WFName: "twin-fanout", Build: func() ([]*wf.Task, []string, []wf.Edge, error) {
			long := wf.NewTask("clone", []string{"/data/in.dat"}, []wf.FileInfo{{Path: "/wf/long.dat", SizeMB: 16}})
			long.CPUSeconds = 120
			short := wf.NewTask("clone", []string{"/data/in.dat"}, []wf.FileInfo{{Path: "/wf/short.dat", SizeMB: 16}})
			short.CPUSeconds = 5
			merge := wf.NewTask("merge", []string{"/wf/long.dat", "/wf/short.dat"}, []wf.FileInfo{{Path: "/wf/out.dat", SizeMB: 16}})
			merge.CPUSeconds = 5
			return []*wf.Task{long, short, merge}, []string{"/data/in.dat"}, nil, nil
		}}
	}
	inputs := []workloads.Input{{Path: "/data/in.dat", SizeMB: 32}}
	store := provenance.NewMemStore()
	eng, env := newEnv(t, 3, store, inputs)
	cfg := core.Config{WorkflowID: "twin-resume", ContainerVCores: 1, ContainerMemMB: 1024}
	am, err := core.Launch(env, twins(), scheduler.NewFCFS(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for ts := 1.0; am.CompletedTasks() < 1 && !am.Finished(); ts++ {
		eng.RunUntil(ts)
	}
	if am.Finished() {
		t.Fatal("workflow finished before the crash could be injected")
	}
	if got := am.CompletedTasks(); got != 1 {
		t.Fatalf("%d tasks completed at the crash, want exactly the short twin", got)
	}
	am.Kill()

	am2, err := core.Resume(env, twins(), scheduler.NewFCFS(), cfg, store)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	rep, err := am2.Report()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Succeeded {
		t.Fatalf("resume misrecovered the fan-out twins: %v", rep.Err)
	}
	if rep.Recovered != 1 {
		t.Fatalf("recovered %d tasks, want 1 (the short twin only)", rep.Recovered)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("resumed incarnation executed %d tasks, want 2 (long twin + merge)", len(rep.Results))
	}
	events, err := store.Events()
	if err != nil {
		t.Fatal(err)
	}
	successes := 0
	for _, ev := range events {
		if ev.Type == provenance.TaskEnd && ev.ExitCode == 0 && ev.Error == "" {
			successes++
		}
	}
	if successes != 3 {
		t.Fatalf("%d successful task-end events across both incarnations, want 3 (no re-execution)", successes)
	}
}

// TestChaosHangSpeculation hangs a task's first attempt forever; the
// deadline must fire, a speculative duplicate must win on another node, and
// the hung loser's container must be released — no leaked capacity.
func TestChaosHangSpeculation(t *testing.T) {
	driver, inputs := snvWorkload()
	plan := chaos.NewPlan(11)
	plan.AddRule(chaos.TaskRule{Signature: "bowtie2", Attempt: 0, Count: 1, Fate: chaos.FateHang})
	_, env := newEnv(t, 4, provenance.NewMemStore(), inputs)
	cfg := core.Config{
		ContainerVCores: 2, ContainerMemMB: 4096,
		Chaos:               plan,
		TaskTimeoutFloorSec: 60,
		Speculate:           true,
	}
	rep, err := core.Run(env, driver, scheduler.NewFCFS(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Succeeded {
		t.Fatal(rep.Err)
	}
	if rep.TimedOut < 1 {
		t.Fatalf("timed out attempts = %d, want >= 1", rep.TimedOut)
	}
	if rep.Speculative < 1 {
		t.Fatalf("speculative attempts = %d, want >= 1", rep.Speculative)
	}
	if rep.Retries != 0 {
		t.Fatalf("retries = %d; speculation must not count as retry", rep.Retries)
	}
	if n := env.RM.RunningContainers(); n != 0 {
		t.Fatalf("%d containers still allocated after the workflow finished (leak)", n)
	}
	// The losing (hung) attempt is visible in provenance as a killed one.
	events, _ := env.Prov.Store().Events()
	killed := 0
	for _, ev := range events {
		if ev.Type == provenance.TaskEnd && ev.ExitCode == 137 {
			killed++
		}
	}
	if killed < 1 {
		t.Fatal("hung loser attempt left no provenance record")
	}
}

// TestChaosDeterminism runs the same workflow twice under the same chaos
// plan and seed; the provenance event sequences must be identical (compared
// without process-global task IDs, which differ between instantiations).
func TestChaosDeterminism(t *testing.T) {
	run := func() []string {
		driver, inputs := snvWorkload()
		plan, err := chaos.Parse("crashrate=0.2;readerr=0.05;slow=node-02@20:2", 7)
		if err != nil {
			t.Fatal(err)
		}
		eng, env := newEnv(t, 4, provenance.NewMemStore(), inputs)
		plan.Arm(eng, env.RM, env.FS, env.Cluster)
		am, err := core.Launch(env, driver, scheduler.NewFCFS(), core.Config{
			ContainerVCores: 2, ContainerMemMB: 4096,
			Chaos: plan,
		})
		if err != nil {
			t.Fatal(err)
		}
		eng.Run()
		if !am.Finished() {
			t.Fatal("workflow did not terminate under chaos")
		}
		events, _ := env.Prov.Store().Events()
		var seq []string
		for _, ev := range events {
			// Normalize: drop IDs (task counters are process-global).
			seq = append(seq, fmt.Sprintf("%s|%s|%s|a%d|%d|%s|%.6f|%.6f",
				ev.Type, ev.Signature, ev.Node, ev.Attempt, ev.ExitCode, ev.Error, ev.Timestamp, ev.DurationSec))
		}
		return seq
	}
	first := run()
	second := run()
	if len(first) != len(second) {
		t.Fatalf("event counts differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("event %d differs:\n  run1: %s\n  run2: %s", i, first[i], second[i])
		}
	}
	if len(first) < 4 {
		t.Fatalf("suspiciously few events: %d", len(first))
	}
}
