package e2e

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestLoadSoakByteDeterminism builds the hiway binary and runs the same
// `hiway load` soak twice in separate processes and working directories.
// The full stdout — summary, per-tenant breakdown, and the per-workflow
// accounting table — and the Prometheus metrics snapshot must be
// byte-identical: the service tier's determinism-by-seed guarantee at the
// operator-facing surface. The overload rate (x2) makes the comparison
// cover rejection, retry, and drop accounting, not just the happy path,
// and a second pair of runs repeats the check under an armed chaos plan.
func TestLoadSoakByteDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the CLI binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "hiway")
	build := exec.Command("go", "build", "-o", bin, "hiway/cmd/hiway")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	run := func(runDir string, extra ...string) (stdout, metrics []byte) {
		t.Helper()
		if err := os.MkdirAll(runDir, 0o755); err != nil {
			t.Fatal(err)
		}
		args := append([]string{"load",
			"-seed", "7", "-nodes", "6", "-duration", "1800", "-rate", "2",
			"-max-concurrent", "3", "-max-queue", "6", "-metrics", "metrics.prom"},
			extra...)
		cmd := exec.Command(bin, args...)
		cmd.Dir = runDir
		var out, stderr bytes.Buffer
		cmd.Stdout, cmd.Stderr = &out, &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("load run: %v\nstderr: %s", err, stderr.String())
		}
		m, err := os.ReadFile(filepath.Join(runDir, "metrics.prom"))
		if err != nil {
			t.Fatal(err)
		}
		return out.Bytes(), m
	}

	cases := []struct {
		name  string
		extra []string
	}{
		{"plain", nil},
		{"chaos", []string{"-chaos", "crashrate=0.1;kill=node-03@300;slow=node-02@120:1", "-chaos-seed", "5"}},
		{"memo", []string{"-memo"}},
		{"memo-chaos", []string{"-memo", "-chaos", "crashrate=0.1;kill=node-03@300;slow=node-02@120:1", "-chaos-seed", "5"}},
	}
	for _, tc := range cases {
		out1, m1 := run(filepath.Join(dir, tc.name+"-1"), tc.extra...)
		out2, m2 := run(filepath.Join(dir, tc.name+"-2"), tc.extra...)
		if !bytes.Equal(out1, out2) {
			t.Errorf("%s: stdout differs between identical soak runs:\n--- run 1\n%s--- run 2\n%s", tc.name, out1, out2)
		}
		if !bytes.Equal(m1, m2) {
			t.Errorf("%s: metrics snapshots differ between identical soak runs", tc.name)
		}
		if !bytes.Contains(out1, []byte("workflow accounts:")) {
			t.Errorf("%s: stdout lacks the per-workflow accounting table:\n%s", tc.name, out1)
		}
		if !bytes.Contains(m1, []byte("hiway_svc_submissions_total")) {
			t.Errorf("%s: metrics snapshot lacks hiway_svc_* series", tc.name)
		}
		if !bytes.Contains(out1, []byte("rejected")) {
			t.Errorf("%s: stdout lacks rejection accounting", tc.name)
		}
		memoOn := false
		for _, a := range tc.extra {
			memoOn = memoOn || a == "-memo"
		}
		if memoOn {
			if !bytes.Contains(out1, []byte("memo: ")) {
				t.Errorf("%s: stdout lacks the memo splice summary:\n%s", tc.name, out1)
			}
			if !bytes.Contains(m1, []byte("hiway_memo_hits_total")) {
				t.Errorf("%s: metrics snapshot lacks hiway_memo_* series", tc.name)
			}
		} else if bytes.Contains(m1, []byte("hiway_memo_")) {
			t.Errorf("%s: memo-off run leaked hiway_memo_* series into metrics", tc.name)
		}
	}
}

// TestElasticSoakByteDeterminism repeats the soak discipline for the elastic
// tier: the same `hiway elastic` run — reactive autoscaling with nodes
// joining, draining, and being reclaimed by seeded spot chaos — executed
// twice in separate processes must print byte-identical stdout and metrics
// snapshots. Membership churn, evacuation copies, and preemption retries all
// ride the deterministic event queue, so any divergence is a real bug.
func TestElasticSoakByteDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the CLI binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "hiway")
	build := exec.Command("go", "build", "-o", bin, "hiway/cmd/hiway")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	run := func(runDir string, extra ...string) (stdout, metrics []byte) {
		t.Helper()
		if err := os.MkdirAll(runDir, 0o755); err != nil {
			t.Fatal(err)
		}
		args := append([]string{"elastic",
			"-seed", "7", "-duration", "900", "-autoscale", "reactive",
			"-spot-rate", "0.3", "-metrics", "metrics.prom"},
			extra...)
		cmd := exec.Command(bin, args...)
		cmd.Dir = runDir
		var out, stderr bytes.Buffer
		cmd.Stdout, cmd.Stderr = &out, &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("elastic run: %v\nstderr: %s", err, stderr.String())
		}
		m, err := os.ReadFile(filepath.Join(runDir, "metrics.prom"))
		if err != nil {
			t.Fatal(err)
		}
		return out.Bytes(), m
	}

	cases := []struct {
		name  string
		extra []string
	}{
		{"reactive-spot", nil},
		{"predictive-spot", []string{"-autoscale", "predictive"}},
	}
	for _, tc := range cases {
		out1, m1 := run(filepath.Join(dir, tc.name+"-1"), tc.extra...)
		out2, m2 := run(filepath.Join(dir, tc.name+"-2"), tc.extra...)
		if !bytes.Equal(out1, out2) {
			t.Errorf("%s: stdout differs between identical elastic runs:\n--- run 1\n%s--- run 2\n%s", tc.name, out1, out2)
		}
		if !bytes.Equal(m1, m2) {
			t.Errorf("%s: metrics snapshots differ between identical elastic runs", tc.name)
		}
		if !bytes.Contains(out1, []byte("spot-notices")) {
			t.Errorf("%s: stdout lacks the churn ledger:\n%s", tc.name, out1)
		}
		if !bytes.Contains(m1, []byte("hiway_autoscale_scale_ups_total")) {
			t.Errorf("%s: metrics snapshot lacks hiway_autoscale_* series", tc.name)
		}
		if !bytes.Contains(m1, []byte("hiway_yarn_preempted_total")) {
			t.Errorf("%s: metrics snapshot lacks the preemption counter", tc.name)
		}
	}
}
