package e2e

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"hiway/internal/service"
)

// serveMix is the tenant mix for the serve e2e: rates are sized so a
// 300-second seeded window yields comfortably more than 128 workflows.
func serveMix() []service.TenantProfile {
	return []service.TenantProfile{
		{Name: "genomics", Weight: 2, MaxContainers: 8, RatePerSec: 0.45,
			Workload: service.WorkloadSpec{Kind: service.WorkloadSNV, FileSizeMB: 8, CPUSeconds: 5}},
		{Name: "rnaseq", Weight: 1, MaxContainers: 4, RatePerSec: 0.25,
			Workload: service.WorkloadSpec{Kind: service.WorkloadSNV, FilesPerSample: 2, FileSizeMB: 8, CPUSeconds: 5}},
	}
}

// admitGate parks every admitted run inside the hook until release is
// closed, so the test can prove N runs are concurrently in flight. Hooks
// fire outside the server mutex precisely so they may block like this.
type admitGate struct {
	mu      sync.Mutex
	n       int
	target  int
	reached chan struct{}
	release chan struct{}
}

func newAdmitGate(target int) *admitGate {
	return &admitGate{target: target, reached: make(chan struct{}), release: make(chan struct{})}
}

func (g *admitGate) OnQueued(now float64, tenant, id string)                       {}
func (g *admitGate) OnRejected(now float64, tenant, id string, retryAfter float64) {}
func (g *admitGate) OnFinished(now float64, tenant, id string, succeeded bool)     {}
func (g *admitGate) OnAdmitted(now float64, tenant, id string) {
	g.mu.Lock()
	g.n++
	if g.n == g.target {
		close(g.reached)
	}
	g.mu.Unlock()
	<-g.release
}

// TestServeConcurrentHTTPMatchesDeterministicReplay is the serve tier's
// headline e2e: the same seeded submission schedule is (a) pushed over real
// HTTP by parallel clients against a live concurrent server, with at least
// 100 workflows pinned concurrently in flight, and (b) replayed on a
// virtual clock by RunDeterministic. The completed-run multisets must be
// byte-identical — each run's outcome is a pure function of its submission
// because its substrate is seeded from the run ID.
func TestServeConcurrentHTTPMatchesDeterministicReplay(t *testing.T) {
	const (
		seed     = 97
		window   = 300.0
		inFlight = 100
	)
	profiles := serveMix()
	subs := service.SeededSubmissions(seed, profiles, window)
	if len(subs) < 128 {
		t.Fatalf("seeded window produced only %d submissions; need >= 128 for the in-flight pin", len(subs))
	}
	cfg := service.ServerConfig{
		Nodes:         2,
		MaxConcurrent: 128,
		MaxQueue:      4096,
	}

	// Live half: a real TCP listener, parallel clients, blocking admit gate.
	gate := newAdmitGate(inFlight)
	liveCfg := cfg
	liveCfg.Hook = gate
	live, err := service.NewServer(liveCfg, profiles)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(live.Handler())
	defer hs.Close()

	work := make(chan service.TimedSubmission, len(subs))
	for _, ts := range subs {
		work <- ts
	}
	close(work)
	errCh := make(chan error, len(subs))
	var clients sync.WaitGroup
	for c := 0; c < 16; c++ {
		clients.Add(1)
		go func() {
			defer clients.Done()
			for ts := range work {
				body, err := json.Marshal(ts.Req)
				if err != nil {
					errCh <- err
					return
				}
				resp, err := hs.Client().Post(hs.URL+"/v1/workflows", "application/json", bytes.NewReader(body))
				if err != nil {
					errCh <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted {
					errCh <- fmt.Errorf("submit %s-%s: status %d", ts.Req.Tenant, ts.Req.Name, resp.StatusCode)
					return
				}
			}
		}()
	}
	clients.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Every submission is in (queued or parked in the admit hook). The gate
	// has already seen 100 admissions; prove they are concurrently in flight.
	select {
	case <-gate.reached:
	case <-time.After(60 * time.Second):
		t.Fatalf("only %d runs admitted; wanted %d concurrently in flight", gate.n, inFlight)
	}
	if peak := live.PeakRunning(); peak < inFlight {
		t.Fatalf("peak concurrent runs %d, want >= %d", peak, inFlight)
	}
	close(gate.release)

	live.StartDrain()
	select {
	case <-live.Drained():
	case <-time.After(120 * time.Second):
		t.Fatal("live server did not drain")
	}
	live.Wait()

	st := live.Stats()
	if st.Rejected != 0 || int(st.Accepted) != len(subs) || st.Completed+st.Failed != st.Accepted {
		t.Fatalf("live stats: %+v for %d submissions", st, len(subs))
	}

	// Deterministic half: same config (minus the hook), same seed, virtual
	// clock, in-process transport through the same HTTP handlers.
	detCfg := cfg
	detCfg.Deterministic = true
	det, err := service.NewServer(detCfg, profiles)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.RunDeterministic(seed, window); err != nil {
		t.Fatal(err)
	}
	if ds := det.Stats(); ds.Accepted != st.Accepted {
		t.Fatalf("replay accepted %d runs, live accepted %d", ds.Accepted, st.Accepted)
	}

	liveMS, detMS := live.Multiset(), det.Multiset()
	if !bytes.Equal(liveMS, detMS) {
		t.Fatalf("concurrent HTTP multiset diverged from deterministic replay\nlive (%d bytes):\n%s\ndet (%d bytes):\n%s",
			len(liveMS), liveMS, len(detMS), detMS)
	}
	if len(bytes.TrimSpace(liveMS)) == 0 {
		t.Fatal("empty multiset: the comparison proved nothing")
	}
}

// TestServeHTTPStatusAndEventsOverWire exercises the read side over a real
// connection: per-run status, the SSE stream of a finished run, and the
// Prometheus exposition.
func TestServeHTTPStatusAndEventsOverWire(t *testing.T) {
	srv, err := service.NewServer(service.ServerConfig{Nodes: 2}, serveMix())
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	req := service.SubmitRequest{Tenant: "genomics", Name: "wire0",
		Workload: &service.WorkloadSpec{Kind: service.WorkloadSNV, FileSizeMB: 8, CPUSeconds: 5}}
	body, _ := json.Marshal(req)
	resp, err := hs.Client().Post(hs.URL+"/v1/workflows", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub service.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}

	run := srv.Lookup(sub.ID)
	if run == nil {
		t.Fatalf("run %q not registered", sub.ID)
	}
	select {
	case <-run.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("run did not finish")
	}

	sr, err := hs.Client().Get(hs.URL + "/v1/workflows/" + sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	var status service.RunStatus
	if err := json.NewDecoder(sr.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	sr.Body.Close()
	if status.State != service.StateSucceeded || status.Tasks == 0 {
		t.Fatalf("status over the wire: %+v", status)
	}

	er, err := hs.Client().Get(hs.URL + "/v1/workflows/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	if _, err := stream.ReadFrom(er.Body); err != nil {
		t.Fatal(err)
	}
	er.Body.Close()
	for _, typ := range []string{service.EventQueued, service.EventAdmitted, service.EventFinished} {
		if !bytes.Contains(stream.Bytes(), []byte("event: "+typ+"\n")) {
			t.Fatalf("SSE stream missing %q:\n%s", typ, stream.String())
		}
	}

	mr, err := hs.Client().Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics bytes.Buffer
	if _, err := metrics.ReadFrom(mr.Body); err != nil {
		t.Fatal(err)
	}
	mr.Body.Close()
	if !bytes.Contains(metrics.Bytes(), []byte("hiway_serve_completed_total 1")) {
		t.Fatalf("metrics exposition missing completion counter:\n%s", metrics.String())
	}

	srv.StartDrain()
	select {
	case <-srv.Drained():
	case <-time.After(60 * time.Second):
		t.Fatal("server did not drain")
	}
	srv.Wait()
}
