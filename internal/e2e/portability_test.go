package e2e

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"hiway/internal/core"
	"hiway/internal/scheduler"
	"hiway/internal/verify"
	"hiway/internal/workloads"
)

// TestSNVCrossLanguageEquivalence runs the paper's SNV reference pipeline
// end-to-end in both languages — the Cuneiform original (dynamic region
// scatter resolved by the Behavior hook) and the CWL port (region scatter
// declared statically) — on identical simulated clusters, and requires the
// two runs to reach the same canonical outcome: same completed-task
// lineage multiset, same workflow outputs.
func TestSNVCrossLanguageEquivalence(t *testing.T) {
	cfg := workloads.SNVConfig{
		Samples: 2, FilesPerSample: 3, FileSizeMB: 64, CallSplitRegions: 4,
		AlignCPUSeconds: 20, SortCPUSeconds: 10, CallCPUSeconds: 15, AnnotateCPUSeconds: 5,
		RefLocal: true,
	}

	cfDriver, cfInputs, behavior := workloads.SNVCuneiformDriver("snv-port", cfg)
	_, cfEnv := newEnv(t, 4, nil, cfInputs)
	cfRep, err := core.Run(cfEnv, cfDriver, scheduler.NewDataAware(cfEnv.FS),
		core.Config{ContainerVCores: 2, ContainerMemMB: 7000, Behavior: behavior})
	if err != nil {
		t.Fatal(err)
	}
	if !cfRep.Succeeded {
		t.Fatal("cuneiform run failed:", cfRep.Err)
	}

	cwlDriver, cwlInputs := workloads.SNVCWLDriver("snv-port", cfg)
	_, cwlEnv := newEnv(t, 4, nil, cwlInputs)
	cwlRep, err := core.Run(cwlEnv, cwlDriver, scheduler.NewDataAware(cwlEnv.FS),
		core.Config{ContainerVCores: 2, ContainerMemMB: 7000})
	if err != nil {
		t.Fatal(err)
	}
	if !cwlRep.Succeeded {
		t.Fatal("cwl run failed:", cwlRep.Err)
	}

	// 6 aligns + 2 scatters + 8 calls + 2 annotates on both sides.
	if got := signatureCounts(cfRep.Results); got["align"] != 6 || got["call"] != 8 {
		t.Fatalf("cuneiform counts = %v", got)
	}
	if !reflect.DeepEqual(signatureCounts(cfRep.Results), signatureCounts(cwlRep.Results)) {
		t.Fatalf("signature counts diverge: cuneiform %v, cwl %v",
			signatureCounts(cfRep.Results), signatureCounts(cwlRep.Results))
	}
	cfCanon, cfOuts := verify.CanonicalOutcome(cfRep.Results, cfRep.Outputs)
	cwlCanon, cwlOuts := verify.CanonicalOutcome(cwlRep.Results, cwlRep.Outputs)
	if !reflect.DeepEqual(cfCanon, cwlCanon) {
		t.Fatalf("canonical lineage diverges:\ncuneiform: %v\ncwl:       %v", cfCanon, cwlCanon)
	}
	if !reflect.DeepEqual(cfOuts, cwlOuts) {
		t.Fatalf("canonical outputs diverge: cuneiform %v, cwl %v", cfOuts, cwlOuts)
	}
	if len(cfOuts) != cfg.Samples {
		t.Fatalf("outputs = %v, want one annotated VCF per sample", cfOuts)
	}
}

// chainSeed finds a generated verify scenario whose renderings execute
// byte-identically across languages: a fault-free chain, where the
// Cuneiform evaluator's lazy task materialization allocates the same task
// IDs (and therefore synthesizes the same output paths) as the CWL
// frontend's upfront materialization.
func chainSeed(t *testing.T) *verify.Scenario {
	t.Helper()
	for seed := int64(1); seed <= 300; seed++ {
		sc := verify.Generate(seed)
		if sc.Shape != "chain" || sc.Chaos != "" || sc.Service != nil || sc.Elastic != nil {
			continue
		}
		if len(sc.IterTasks) > 0 {
			continue
		}
		if _, err := verify.RenderCuneiform(sc); err != nil {
			continue
		}
		return sc
	}
	t.Fatal("no fault-free chain scenario in seed range")
	return nil
}

// TestCrossLanguageByteIdenticalCLI is the strongest portability claim the
// CLI makes: the same logical workflow, rendered in two languages and run
// in separate `hiway sim` processes, produces byte-identical stdout and a
// byte-identical provenance trace. Restricted to chain-shaped fault-free
// scenarios, where task-ID allocation order coincides across frontends; the
// workflow files share the basename "wf" so workflow IDs and synthesized
// paths agree.
func TestCrossLanguageByteIdenticalCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the CLI binary")
	}
	sc := chainSeed(t)
	cfSrc, err := verify.RenderCuneiform(sc)
	if err != nil {
		t.Fatal(err)
	}
	cwlSrc, err := verify.RenderCWL(sc)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	bin := filepath.Join(dir, "hiway")
	build := exec.Command("go", "build", "-o", bin, "hiway/cmd/hiway")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	if err := os.WriteFile(filepath.Join(dir, "wf.cf"), []byte(cfSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "wf.cwl"), []byte(cwlSrc), 0o644); err != nil {
		t.Fatal(err)
	}

	var stageArgs []string
	for _, in := range sc.Inputs {
		stageArgs = append(stageArgs, "-input",
			in.Path+"="+strconv.FormatFloat(in.SizeMB, 'g', -1, 64))
	}

	run := func(wfFile string) ([]byte, []byte) {
		t.Helper()
		runDir := filepath.Join(dir, strings.TrimPrefix(filepath.Ext(wfFile), "."))
		if err := os.MkdirAll(runDir, 0o755); err != nil {
			t.Fatal(err)
		}
		args := append([]string{"sim",
			"-w", filepath.Join(dir, wfFile),
			"-nodes", fmt.Sprint(sc.Nodes),
			"-prov", "prov.jsonl"}, stageArgs...)
		cmd := exec.Command(bin, args...)
		cmd.Dir = runDir
		var stdout, stderr bytes.Buffer
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("%s run: %v\nstderr: %s\nstdout: %s", wfFile, err, stderr.String(), stdout.String())
		}
		prov, err := os.ReadFile(filepath.Join(runDir, "prov.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		return stdout.Bytes(), prov
	}

	cfOut, cfProv := run("wf.cf")
	cwlOut, cwlProv := run("wf.cwl")
	if !bytes.Equal(cfOut, cwlOut) {
		t.Errorf("seed %d: stdout differs between languages:\n--- cuneiform\n%s--- cwl\n%s",
			sc.Seed, cfOut, cwlOut)
	}
	if !bytes.Equal(cfProv, cwlProv) {
		t.Errorf("seed %d: provenance traces differ between languages (%d vs %d bytes)",
			sc.Seed, len(cfProv), len(cwlProv))
	}
	if len(cfProv) == 0 {
		t.Error("empty provenance trace")
	}
}
