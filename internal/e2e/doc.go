// Package e2e holds whole-system integration tests: every workflow
// language through the full AM/YARN/HDFS stack, provenance trace
// round-trips, fault tolerance under iterative execution, and the
// database-backed provenance path. The package contains tests only.
package e2e
