package e2e

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"hiway/internal/cluster"
	"hiway/internal/core"
	"hiway/internal/hdfs"
	"hiway/internal/lang/cuneiform"
	"hiway/internal/lang/galaxy"
	"hiway/internal/lang/trace"
	"hiway/internal/provdb"
	"hiway/internal/provenance"
	"hiway/internal/recipes"
	"hiway/internal/scheduler"
	"hiway/internal/sim"
	"hiway/internal/wf"
	"hiway/internal/workloads"
	"hiway/internal/yarn"
)

// newEnv materializes a small homogeneous cluster with the given
// provenance store.
func newEnv(t *testing.T, nodes int, store provenance.Store, inputs []workloads.Input) (*sim.Engine, core.Env) {
	t.Helper()
	r := &recipes.Recipe{
		Name:       "e2e",
		Groups:     []recipes.NodeGroup{{Count: nodes, Spec: cluster.M3Large()}},
		SwitchMBps: 2000,
		HDFS:       hdfs.Config{BlockSizeMB: 512, Replication: 2},
		YARN:       yarn.Config{},
		Seed:       5,
		Inputs:     inputs,
	}
	eng, env, err := r.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if store != nil {
		mgr, err := provenance.NewManager(store)
		if err != nil {
			t.Fatal(err)
		}
		env.Prov = mgr
	}
	return eng, env
}

// signatureCounts summarizes a report by task name.
func signatureCounts(results []*wf.TaskResult) map[string]int {
	out := map[string]int{}
	for _, r := range results {
		out[r.Task.Name]++
	}
	return out
}

// TestTraceRoundTrip runs a workflow, exports its provenance trace, replays
// the trace as a workflow on a fresh cluster (§3.5: trace files are the
// fourth supported language), and checks that the replay reproduces the
// same task graph and final outputs.
func TestTraceRoundTrip(t *testing.T) {
	driver, inputs := workloads.SNV(workloads.SNVConfig{
		Samples: 2, FilesPerSample: 4, FileSizeMB: 64,
		AlignCPUSeconds: 20, SortCPUSeconds: 10, CallCPUSeconds: 30, AnnotateCPUSeconds: 10,
		RefLocal: true,
	})
	store := provenance.NewMemStore()
	_, env := newEnv(t, 4, store, inputs)
	rep, err := core.Run(env, driver, scheduler.NewDataAware(env.FS), core.Config{ContainerVCores: 2, ContainerMemMB: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Succeeded {
		t.Fatal(rep.Err)
	}

	// Replay on a different (smaller) cluster — "albeit not necessarily on
	// the same compute nodes". The input data must be present, as §3.6
	// requires for trace replay.
	replayDriver := trace.NewDriverFromStore("replay", store)
	_, env2 := newEnv(t, 2, nil, inputs)
	rep2, err := core.Run(env2, replayDriver, scheduler.NewFCFS(), core.Config{ContainerVCores: 2, ContainerMemMB: 4096})
	if err != nil {
		t.Fatal(err)
	}
	got, want := signatureCounts(rep2.Results), signatureCounts(rep.Results)
	if len(got) != len(want) {
		t.Fatalf("signatures: got %v want %v", got, want)
	}
	for sig, n := range want {
		if got[sig] != n {
			t.Fatalf("signature %s: got %d want %d", sig, got[sig], n)
		}
	}
	sort.Strings(rep.Outputs)
	sort.Strings(rep2.Outputs)
	if fmt.Sprint(rep.Outputs) != fmt.Sprint(rep2.Outputs) {
		t.Fatalf("outputs differ:\n%v\n%v", rep.Outputs, rep2.Outputs)
	}
	for _, out := range rep2.Outputs {
		if !env2.FS.Exists(out) {
			t.Fatalf("replayed output %s missing from HDFS", out)
		}
	}
}

// TestSchedulerMatrixSameResult runs the Montage DAX workflow under every
// scheduling policy; all must complete with identical outputs (policies
// change performance, never semantics).
func TestSchedulerMatrixSameResult(t *testing.T) {
	policies := []string{
		scheduler.PolicyFCFS, scheduler.PolicyDataAware,
		scheduler.PolicyRoundRobin, scheduler.PolicyHEFT, scheduler.PolicyAdaptiveGreedy,
	}
	var outputs []string
	var makespans []float64
	for _, policy := range policies {
		driver, inputs := workloads.Montage(workloads.MontageConfig{Degree: 0.25})
		_, env := newEnv(t, 5, nil, inputs)
		sched, err := scheduler.New(policy, scheduler.Deps{Locality: env.FS, Estimator: env.Prov})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := core.Run(env, driver, sched, core.Config{ContainerVCores: 1, ContainerMemMB: 2048})
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if len(rep.Results) != 39 {
			t.Fatalf("%s: %d tasks", policy, len(rep.Results))
		}
		sort.Strings(rep.Outputs)
		outputs = append(outputs, strings.Join(rep.Outputs, ","))
		makespans = append(makespans, rep.MakespanSec)
	}
	for i := 1; i < len(outputs); i++ {
		if outputs[i] != outputs[0] {
			t.Fatalf("policy %s produced different outputs: %s vs %s", policies[i], outputs[i], outputs[0])
		}
	}
	_ = makespans
}

// TestGalaxyWorkflowOnSimulatedCluster drives a Galaxy export through the
// whole stack, with interactive input binding and a tool profile registry.
func TestGalaxyWorkflowOnSimulatedCluster(t *testing.T) {
	const export = `{
	  "name": "rnaseq-mini",
	  "steps": {
	    "0": {"id": 0, "type": "data_input", "label": "reads", "outputs": []},
	    "1": {"id": 1, "type": "tool", "tool_id": "tophat2",
	          "input_connections": {"input": {"id": 0, "output_name": "output"}},
	          "outputs": [{"name": "hits", "type": "bam"}]},
	    "2": {"id": 2, "type": "tool", "tool_id": "cufflinks",
	          "input_connections": {"input": {"id": 1, "output_name": "hits"}},
	          "outputs": [{"name": "assembly", "type": "gtf"}]}
	  }
	}`
	driver := galaxy.NewDriver("rnaseq-mini", export, galaxy.Options{
		Inputs: map[string]string{"reads": "/data/reads.fastq"},
		Profiles: map[string]wf.Profile{
			"tophat2":   {CPUSeconds: 100, Threads: 2, MemMB: 4096, OutputSizeMB: 200},
			"cufflinks": {CPUSeconds: 50, Threads: 2, MemMB: 4096, OutputSizeMB: 20},
		},
	})
	_, env := newEnv(t, 3, nil, []workloads.Input{{Path: "/data/reads.fastq", SizeMB: 150}})
	rep, err := core.Run(env, driver, scheduler.NewDataAware(env.FS), core.Config{ContainerVCores: 2, ContainerMemMB: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 || !rep.Succeeded {
		t.Fatalf("report = %+v", rep)
	}
	if !env.FS.Exists(rep.Outputs[0]) {
		t.Fatal("galaxy output missing")
	}
}

// TestIterativeWorkflowSurvivesFaults combines the two hard features:
// an iterative Cuneiform workflow and injected task failures; the AM must
// retry on other nodes and the loop must still converge.
func TestIterativeWorkflowSurvivesFaults(t *testing.T) {
	driver := cuneiform.NewDriver("shrink", `
deftask step( out : cur ) @cpu 5 in bash *{ refine }*
deftask check( <flag> : cur ) @cpu 1 in bash *{ converged? }*
defun loop( cur ) {
  if check( cur: cur ) then loop( cur: step( cur: cur ) ) else cur end
}
loop( cur: "/data/init" );`)
	_, env := newEnv(t, 3, nil, []workloads.Input{{Path: "/data/init", SizeMB: 4}})
	checks := 0
	failed := map[int64]bool{}
	cfg := core.Config{
		ContainerVCores: 1, ContainerMemMB: 2048,
		Behavior: func(task *wf.Task) wf.Outcome {
			out := wf.DefaultOutcome(task)
			if task.Name == "check" {
				checks++
				if checks <= 2 {
					out.Outputs["flag"] = []wf.FileInfo{{Path: fmt.Sprintf("/data/flag%d", task.ID), SizeMB: 0.01}}
				} else {
					out.Outputs["flag"] = nil
				}
			}
			return out
		},
		FaultInjector: func(task *wf.Task, node string, attempt int) bool {
			// Every step task fails its first attempt.
			if task.Name == "step" && attempt == 0 && !failed[task.ID] {
				failed[task.ID] = true
				return true
			}
			return false
		},
	}
	rep, err := core.Run(env, driver, scheduler.NewFCFS(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Succeeded {
		t.Fatal(rep.Err)
	}
	if rep.Retries != 2 { // two step tasks, one retry each
		t.Fatalf("retries = %d, want 2", rep.Retries)
	}
	counts := signatureCounts(rep.Results)
	if counts["check"] != 3 || counts["step"] != 2 {
		t.Fatalf("counts = %v", counts)
	}
}

// TestProvDBBackedRun stores a real run's provenance in the embedded
// database, reopens it, and replays the trace from the database.
func TestProvDBBackedRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prov.db")
	db, err := provdb.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	store := provenance.NewDBStore(db)

	driver, inputs := workloads.Montage(workloads.MontageConfig{Degree: 0.25})
	_, env := newEnv(t, 4, store, inputs)
	rep, err := core.Run(env, driver, scheduler.NewDataAware(env.FS), core.Config{ContainerVCores: 1, ContainerMemMB: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen the database and replay the recorded run.
	db2, err := provdb.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	store2 := provenance.NewDBStore(db2)
	defer store2.Close()
	replay := trace.NewDriverFromStore("montage-replay", store2)
	_, env2 := newEnv(t, 4, nil, inputs)
	rep2, err := core.Run(env2, replay, scheduler.NewFCFS(), core.Config{ContainerVCores: 1, ContainerMemMB: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Results) != len(rep.Results) {
		t.Fatalf("replayed %d of %d tasks", len(rep2.Results), len(rep.Results))
	}
}

// TestNodeCrashMidWorkflow kills a worker mid-run; replication and retries
// must carry the workflow to completion (§3.1).
func TestNodeCrashMidWorkflow(t *testing.T) {
	driver, inputs := workloads.SNV(workloads.SNVConfig{
		Samples: 2, FilesPerSample: 4, FileSizeMB: 64,
		AlignCPUSeconds: 60, SortCPUSeconds: 30, CallCPUSeconds: 60, AnnotateCPUSeconds: 20,
		RefLocal: true,
	})
	eng, env := newEnv(t, 5, nil, inputs)
	am, err := core.Launch(env, driver, scheduler.NewDataAware(env.FS), core.Config{ContainerVCores: 2, ContainerMemMB: 4096})
	if err != nil {
		t.Fatal(err)
	}
	// Pick a non-AM victim once execution is underway.
	eng.RunUntil(10)
	victim := ""
	for _, id := range env.RM.LiveNodes() {
		if id != am.AMNodeID() {
			victim = id
			break
		}
	}
	env.RM.KillNode(victim)
	env.FS.KillNode(victim)
	eng.Run()
	rep, err := am.Report()
	if err != nil {
		t.Fatalf("workflow did not survive the crash: %v", err)
	}
	if !rep.Succeeded {
		t.Fatal(rep.Err)
	}
	for _, out := range rep.Outputs {
		if !env.FS.Readable(out) {
			t.Fatalf("output %s not readable after crash", out)
		}
	}
}

// TestManyConcurrentWorkflows stresses the one-AM-per-workflow design with
// eight simultaneous applications sharing one cluster.
func TestManyConcurrentWorkflows(t *testing.T) {
	_, env := newEnv(t, 6, nil, nil)
	eng := env.Cluster.Engine
	var ams []*core.AM
	for i := 0; i < 8; i++ {
		prefix := fmt.Sprintf("/wf%d", i)
		var tasks []*wf.Task
		for j := 0; j < 4; j++ {
			task := wf.NewTask("work", nil, []wf.FileInfo{{Path: fmt.Sprintf("%s/out%d", prefix, j), SizeMB: 2}})
			task.CPUSeconds = 15
			tasks = append(tasks, task)
		}
		sb := &wf.StaticBase{WFName: fmt.Sprintf("wf%d", i)}
		sb.Build = func() ([]*wf.Task, []string, []wf.Edge, error) { return tasks, nil, nil, nil }
		am, err := core.Launch(env, sb, scheduler.NewFCFS(), core.Config{ContainerVCores: 1, ContainerMemMB: 1024})
		if err != nil {
			t.Fatal(err)
		}
		ams = append(ams, am)
	}
	eng.Run()
	for i, am := range ams {
		rep, err := am.Report()
		if err != nil {
			t.Fatalf("workflow %d: %v", i, err)
		}
		if !rep.Succeeded || len(rep.Results) != 4 {
			t.Fatalf("workflow %d: %+v", i, rep)
		}
	}
}
