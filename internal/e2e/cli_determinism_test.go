package e2e

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestCLIByteDeterminism builds the hiway binary and, for every scheduling
// policy, runs the same simulated workflow twice in separate processes with
// the same chaos plan and seed. Both the full stdout and the provenance
// trace must be byte-identical — the CLI-level form of the engine's
// determinism guarantee (task IDs are process-global counters, so identical
// bytes require fresh processes, which is exactly what operators get).
func TestCLIByteDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the CLI binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "hiway")
	build := exec.Command("go", "build", "-o", bin, "hiway/cmd/hiway")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// A static DAX diamond, so static planners (roundrobin, heft) can run it
	// too; the chaos plan crashes one attempt and slows one node.
	wfPath := filepath.Join(dir, "det.dax")
	dax := `<adag name="det">
  <job id="A" name="gen" runtime="20"><uses file="in.dat" link="input"/><uses file="a.dat" link="output" sizeMB="64"/></job>
  <job id="B" name="gen" runtime="25"><uses file="in.dat" link="input"/><uses file="b.dat" link="output" sizeMB="32"/></job>
  <job id="C" name="merge" runtime="10"><uses file="a.dat" link="input"/><uses file="b.dat" link="input"/><uses file="c.dat" link="output" sizeMB="8"/></job>
</adag>`
	if err := os.WriteFile(wfPath, []byte(dax), 0o644); err != nil {
		t.Fatal(err)
	}

	// Each run gets its own working directory and writes the trace to the
	// same relative path, so the echoed output lines are comparable bytes.
	run := func(policy, runDir string) []byte {
		t.Helper()
		if err := os.MkdirAll(runDir, 0o755); err != nil {
			t.Fatal(err)
		}
		cmd := exec.Command(bin, "sim",
			"-w", wfPath, "-nodes", "4", "-policy", policy,
			"-input", "in.dat=64", "-prov", "prov.jsonl",
			"-chaos", "crash=gen@0:1;slow=node-01@15:1", "-chaos-seed", "9")
		cmd.Dir = runDir
		var stdout, stderr bytes.Buffer
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("%s run: %v\nstderr: %s", policy, err, stderr.String())
		}
		return stdout.Bytes()
	}

	for _, policy := range []string{"fcfs", "dataaware", "roundrobin", "heft", "adaptive"} {
		dir1 := filepath.Join(dir, policy+"-1")
		dir2 := filepath.Join(dir, policy+"-2")
		out1 := run(policy, dir1)
		out2 := run(policy, dir2)
		prov1 := filepath.Join(dir1, "prov.jsonl")
		prov2 := filepath.Join(dir2, "prov.jsonl")
		if !bytes.Equal(out1, out2) {
			t.Errorf("policy %s: stdout differs between identical runs:\n--- run 1\n%s--- run 2\n%s", policy, out1, out2)
		}
		p1, err := os.ReadFile(prov1)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := os.ReadFile(prov2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(p1, p2) {
			t.Errorf("policy %s: provenance traces differ between identical runs", policy)
		}
		if len(p1) == 0 {
			t.Errorf("policy %s: empty provenance trace", policy)
		}
	}
}
