package e2e

import (
	"bytes"
	"strings"
	"testing"

	"hiway/internal/chaos"
	"hiway/internal/core"
	"hiway/internal/obs"
	"hiway/internal/provenance"
	"hiway/internal/scheduler"
)

// TestObsDeterminism runs the same workflow twice under the same chaos plan
// and seed with full observability attached; the stable-rendered scheduler
// decision logs and the Prometheus metric snapshots must be byte-identical
// across runs. This is the acceptance test for the decision log as a
// debugging artifact: if two same-seed runs rendered differently, diffing a
// good run against a bad one would be meaningless.
func TestObsDeterminism(t *testing.T) {
	run := func() (string, string) {
		driver, inputs := snvWorkload()
		plan, err := chaos.Parse("crashrate=0.2;slow=node-02@20:2", 7)
		if err != nil {
			t.Fatal(err)
		}
		eng, env := newEnv(t, 4, provenance.NewMemStore(), inputs)
		o := obs.New(eng.Now)
		env.Obs = o
		env.RM.SetObs(o)
		env.Prov.SetObs(o)
		plan.Arm(eng, env.RM, env.FS, env.Cluster)
		sched, err := scheduler.New(scheduler.PolicyDataAware, scheduler.Deps{Locality: env.FS, Obs: o})
		if err != nil {
			t.Fatal(err)
		}
		am, err := core.Launch(env, driver, sched, core.Config{
			ContainerVCores: 2, ContainerMemMB: 4096,
			Chaos: plan,
		})
		if err != nil {
			t.Fatal(err)
		}
		eng.Run()
		if !am.Finished() {
			t.Fatal("workflow did not terminate under chaos")
		}
		var prom bytes.Buffer
		if err := o.M().WritePrometheus(&prom); err != nil {
			t.Fatal(err)
		}
		return o.D().RenderStable(), prom.String()
	}

	dec1, prom1 := run()
	dec2, prom2 := run()
	if dec1 != dec2 {
		t.Errorf("decision logs differ across same-seed runs:\nrun1:\n%s\nrun2:\n%s", dec1, dec2)
	}
	if prom1 != prom2 {
		t.Errorf("metric snapshots differ across same-seed runs:\nrun1:\n%s\nrun2:\n%s", prom1, prom2)
	}
	// Sanity: the artifacts are non-trivial and the run actually exercised
	// the instrumented paths.
	if strings.Count(dec1, "\n") < 4 {
		t.Fatalf("suspiciously short decision log:\n%s", dec1)
	}
	for _, want := range []string{"dataaware", "assign"} {
		if !strings.Contains(dec1, want) {
			t.Errorf("decision log missing %q:\n%s", want, dec1)
		}
	}
	for _, want := range []string{"hiway_sched_assignments_total", "hiway_core_attempts_total"} {
		if !strings.Contains(prom1, want) {
			t.Errorf("metrics snapshot missing %q", want)
		}
	}
}
