package service

import (
	"fmt"
	"math/rand"
	"sort"

	"hiway/internal/chaos"
	"hiway/internal/core"
	"hiway/internal/memo"
	"hiway/internal/obs"
	"hiway/internal/scheduler"
	"hiway/internal/sim"
	"hiway/internal/workloads"
	"hiway/internal/yarn"
)

// TenantProfile describes one tenant's traffic and resource policy.
type TenantProfile struct {
	// Name identifies the tenant (must be unique across profiles).
	Name string
	// Weight is the tenant's fair-share weight in the YARN allocator
	// (see yarn.TenantPolicy); 0 declares a background tenant.
	Weight int
	// MaxContainers caps the tenant's concurrent worker containers (hard
	// quota, AM exempt); 0 means no cap.
	MaxContainers int
	// RatePerSec is the mean Poisson rate of arrival events. Each event
	// submits Burst workflows at the same instant (open-loop: arrivals do
	// not wait for completions).
	RatePerSec float64
	// Burst is the number of workflows submitted per arrival event
	// (default 1; >1 models bursty clients).
	Burst int
	// Workload picks the DAG generator for this tenant's submissions.
	Workload WorkloadSpec
	// MaxInFlight caps the tenant's concurrently accepted workflows
	// (queued + running) in the network server; excess submissions are
	// rejected with 429 and a retry-after hint. 0 means no cap. The
	// seeded-arrival Service ignores it (its backpressure is global).
	MaxInFlight int
	// MemoOptOut excludes this tenant from cross-tenant memoization: its
	// workflows neither consume memo entries nor contribute any.
	MemoOptOut bool
}

// validateProfiles checks and normalizes a tenant profile list in place:
// unique non-empty names, defaulted bursts and workload specs. With
// needRates (the seeded-arrival tiers: Service, and Server's deterministic
// mode), every profile must also declare a positive arrival rate; the
// network server accepts rate-less profiles, which submit over HTTP only.
func validateProfiles(profiles []TenantProfile, needRates bool) error {
	if len(profiles) == 0 {
		return fmt.Errorf("service: no tenant profiles")
	}
	seen := map[string]bool{}
	for i := range profiles {
		p := &profiles[i]
		if p.Name == "" {
			return fmt.Errorf("service: profile %d has no name", i)
		}
		if seen[p.Name] {
			return fmt.Errorf("service: duplicate tenant %q", p.Name)
		}
		seen[p.Name] = true
		if needRates && p.RatePerSec <= 0 {
			return fmt.Errorf("service: tenant %q needs a positive arrival rate", p.Name)
		}
		if p.Burst <= 0 {
			p.Burst = 1
		}
		p.Workload.setDefaults()
		if err := p.Workload.validate(); err != nil {
			return fmt.Errorf("service: tenant %q: %w", p.Name, err)
		}
	}
	return nil
}

// TenantPolicies derives the yarn allocator configuration from the profiles,
// so the RM and the service agree on weights and quotas by construction.
func TenantPolicies(profiles []TenantProfile) map[string]yarn.TenantPolicy {
	out := make(map[string]yarn.TenantPolicy, len(profiles))
	for _, p := range profiles {
		out[p.Name] = yarn.TenantPolicy{Weight: p.Weight, MaxContainers: p.MaxContainers}
	}
	return out
}

// Config tunes the service tier.
type Config struct {
	// Seed drives every random draw (arrival times, bursts). Same seed,
	// same profiles → identical schedule.
	Seed int64
	// DurationSec is the arrival-generation window: arrivals occur in
	// [0, DurationSec); the run then drains. Default 3600.
	DurationSec float64
	// MaxConcurrent caps admitted (running) AMs. Default 4.
	MaxConcurrent int
	// MaxQueue is the backpressure threshold: a submission arriving with
	// MaxQueue workflows already queued is rejected. Default 16.
	MaxQueue int
	// RetryAfterSec is the retry-after hint attached to rejections; the
	// simulated client re-submits after this delay. Default 30.
	RetryAfterSec float64
	// RetryLimit is how many times a rejected submission retries before it
	// is dropped. Default 1.
	RetryLimit int
	// Policy is the per-workflow scheduling policy (default fcfs).
	Policy string
	// AMNode optionally pins every workflow's AM container to one node.
	AMNode string
	// MaxTaskRetries is forwarded to each workflow's core.Config. Default 3.
	MaxTaskRetries int
	// Chaos, if set, injects task-level faults into every workflow.
	Chaos chaos.Injector
	// Memo, if set, is the cluster-wide memo table shared by every admitted
	// workflow: repeated submissions of the same pipeline splice completed
	// tasks from it instead of re-executing (per-tenant opt-out via
	// TenantProfile.MemoOptOut). Nil disables memoization.
	Memo *memo.Table
	// Hook, if set, observes the service lifecycle (the verify layer's
	// admission-order auditor installs itself here).
	Hook Hook
}

func (c *Config) setDefaults() {
	if c.DurationSec <= 0 {
		c.DurationSec = 3600
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 16
	}
	if c.RetryAfterSec <= 0 {
		c.RetryAfterSec = 30
	}
	if c.RetryLimit < 0 {
		c.RetryLimit = 0
	} else if c.RetryLimit == 0 {
		c.RetryLimit = 1
	}
	if c.Policy == "" {
		c.Policy = scheduler.PolicyFCFS
	}
	if c.MaxTaskRetries <= 0 {
		c.MaxTaskRetries = 3
	}
}

// Hook observes service lifecycle transitions. Hooks run synchronously
// inside the service and must not call back into it.
type Hook interface {
	// OnQueued fires when a submission is accepted into the queue.
	OnQueued(now float64, tenant, id string)
	// OnRejected fires when backpressure rejects a submission attempt.
	OnRejected(now float64, tenant, id string, retryAfterSec float64)
	// OnAdmitted fires when a queued workflow is admitted (its AM launches).
	OnAdmitted(now float64, tenant, id string)
	// OnFinished fires when an admitted workflow terminates.
	OnFinished(now float64, tenant, id string, succeeded bool)
}

// Account is one workflow's service-level record.
type Account struct {
	ID     string
	Tenant string

	SubmitAt float64 // first submission attempt
	QueuedAt float64 // accepted into the queue (== last attempt's time)
	AdmitAt  float64 // AM launched
	EndAt    float64 // terminal

	QueueWaitSec float64 // AdmitAt - QueuedAt
	MakespanSec  float64 // EndAt - AdmitAt
	E2ESec       float64 // EndAt - SubmitAt

	Tasks      int
	Memoized   int  // tasks spliced from the memo table instead of executed
	Rejections int  // rejected submission attempts
	Admitted   bool // reached an AM launch
	Succeeded  bool
	Dropped    bool   // rejected past RetryLimit, never queued
	Err        string // terminal error, if any
}

// pendingWF is a queued workflow awaiting admission.
type pendingWF struct {
	id      string
	profile *TenantProfile
	seq     int
	acct    *Account
	span    obs.SpanID
}

// Service runs the submission queue, admission control and accounting over
// one materialized environment. Build with New, call Start, then drive the
// engine to quiescence and read Stats.
type Service struct {
	eng      *sim.Engine
	env      core.Env
	cfg      Config
	profiles []TenantProfile

	gate     *fifoGate[*pendingWF]
	pumping  bool
	accounts []*Account

	tr *obs.Tracer

	submittedC map[string]*obs.Counter // per tenant
	rejectedC  map[string]*obs.Counter
	admittedC  map[string]*obs.Counter
	droppedC   *obs.Counter
	completedC *obs.Counter
	failedC    *obs.Counter
	depthG     *obs.Gauge
	runningG   *obs.Gauge
	queueWaitH *obs.Histogram
	e2eH       *obs.Histogram
}

// New validates the profiles and builds the service over the environment.
// The environment's RM should be configured with TenantPolicies(profiles)
// and Fair sharing for the quotas and weights to take effect.
func New(eng *sim.Engine, env core.Env, cfg Config, profiles []TenantProfile) (*Service, error) {
	cfg.setDefaults()
	if err := validateProfiles(profiles, true); err != nil {
		return nil, err
	}
	s := &Service{eng: eng, env: env, cfg: cfg, profiles: profiles,
		gate: newFifoGate[*pendingWF](cfg.MaxConcurrent, cfg.MaxQueue)}
	if cfg.Memo != nil {
		for _, p := range profiles {
			if p.MemoOptOut {
				cfg.Memo.SetOptOut(p.Name)
			}
		}
		cfg.Memo.SetObs(env.Obs)
	}
	s.tr = env.Obs.T()
	m := env.Obs.M()
	s.submittedC = make(map[string]*obs.Counter, len(profiles))
	s.rejectedC = make(map[string]*obs.Counter, len(profiles))
	s.admittedC = make(map[string]*obs.Counter, len(profiles))
	for _, p := range profiles {
		s.submittedC[p.Name] = m.CounterL("hiway_svc_submissions_total",
			"workflow submission attempts", "tenant", p.Name)
		s.rejectedC[p.Name] = m.CounterL("hiway_svc_rejections_total",
			"submission attempts rejected by backpressure", "tenant", p.Name)
		s.admittedC[p.Name] = m.CounterL("hiway_svc_admitted_total",
			"workflows admitted (AM launched)", "tenant", p.Name)
	}
	s.droppedC = m.Counter("hiway_svc_dropped_total", "workflows dropped after exhausting rejection retries")
	s.completedC = m.Counter("hiway_svc_completed_total", "workflows that terminated successfully")
	s.failedC = m.Counter("hiway_svc_failed_total", "workflows that terminated in failure")
	s.depthG = m.Gauge("hiway_svc_queue_depth", "workflows currently queued for admission")
	s.runningG = m.Gauge("hiway_svc_running", "workflows currently admitted and running")
	s.queueWaitH = m.Histogram("hiway_svc_queue_wait_seconds",
		"virtual seconds from queue entry to admission",
		[]float64{1, 5, 10, 30, 60, 120, 300, 600, 1800})
	s.e2eH = m.Histogram("hiway_svc_e2e_latency_seconds",
		"virtual seconds from first submission to workflow end",
		[]float64{30, 60, 120, 300, 600, 1800, 3600, 7200})
	return s, nil
}

// arrival is one pre-generated submission instant.
type arrival struct {
	at      float64
	profile int
}

// Start pre-generates the seeded arrival schedule and registers every
// submission with the engine. The caller then drives the engine (Run) until
// the service drains.
func (s *Service) Start() {
	var arrivals []arrival
	for i := range s.profiles {
		// Per-tenant substream: adding a tenant does not perturb the
		// arrival times of the others.
		rng := rand.New(rand.NewSource(s.cfg.Seed + int64(i+1)*0x9e3779b9))
		t := 0.0
		for {
			t += rng.ExpFloat64() / s.profiles[i].RatePerSec
			if t >= s.cfg.DurationSec {
				break
			}
			arrivals = append(arrivals, arrival{at: t, profile: i})
		}
	}
	sort.SliceStable(arrivals, func(a, b int) bool {
		if arrivals[a].at != arrivals[b].at {
			return arrivals[a].at < arrivals[b].at
		}
		return arrivals[a].profile < arrivals[b].profile
	})
	seq := make([]int, len(s.profiles))
	for _, a := range arrivals {
		p := &s.profiles[a.profile]
		for b := 0; b < p.Burst; b++ {
			w := &pendingWF{
				id:      fmt.Sprintf("%s-w%03d", p.Name, seq[a.profile]),
				profile: p,
				seq:     seq[a.profile],
			}
			seq[a.profile]++
			s.eng.At(a.at, func() { s.submitAttempt(w, 0) })
		}
	}
}

// submitAttempt is one client-side submission try (attempt 0 is the
// arrival; later attempts are post-rejection retries).
func (s *Service) submitAttempt(w *pendingWF, attempt int) {
	now := s.eng.Now()
	tenant := w.profile.Name
	s.submittedC[tenant].Inc()
	if attempt == 0 {
		w.acct = &Account{ID: w.id, Tenant: tenant, SubmitAt: now}
		s.accounts = append(s.accounts, w.acct)
	}
	if s.gate.Full() {
		// Backpressure: reject with a retry-after hint.
		w.acct.Rejections++
		s.rejectedC[tenant].Inc()
		s.tr.Instant("svc", "rejected", "service")
		if s.cfg.Hook != nil {
			s.cfg.Hook.OnRejected(now, tenant, w.id, s.cfg.RetryAfterSec)
		}
		if attempt < s.cfg.RetryLimit {
			s.eng.Schedule(s.cfg.RetryAfterSec, func() { s.submitAttempt(w, attempt+1) })
			return
		}
		w.acct.Dropped = true
		w.acct.EndAt = now
		s.droppedC.Inc()
		return
	}
	w.acct.QueuedAt = now
	w.span = s.tr.BeginAsync("svc", w.id, "service", 0)
	s.tr.Arg(w.span, "tenant", tenant)
	s.gate.Enqueue(w)
	if s.cfg.Hook != nil {
		s.cfg.Hook.OnQueued(now, tenant, w.id)
	}
	s.pump()
}

// pump admits queued workflows through the shared fifoGate in strict FIFO
// order while the concurrency budget allows. Admission never skips the
// queue head: if the head cannot launch (AM capacity), the pump stalls
// until a running workflow finishes and frees resources — head-of-line
// blocking is what preserves intra-tenant admission order, one of the
// audited service invariants.
func (s *Service) pump() {
	if s.pumping {
		return
	}
	s.pumping = true
	defer func() { s.pumping = false }()
	for {
		w, ok := s.gate.Next()
		if !ok {
			break
		}
		if err := s.admit(w); err != nil {
			if s.gate.Running() > 1 {
				// Resources will free when a running AM finishes; put the
				// head back and wait.
				s.gate.Requeue(w)
				break
			}
			// Nothing running and still unlaunchable: terminal failure.
			s.gate.Finish()
			s.terminate(w, false, err)
		}
	}
	s.depthG.Set(float64(s.gate.Depth()))
	s.runningG.Set(float64(s.gate.Running()))
}

// admit stages the workflow's inputs and launches its AM. The caller has
// already charged the concurrency budget.
func (s *Service) admit(w *pendingWF) error {
	now := s.eng.Now()
	driver, inputs, err := buildWorkflow(w.profile, w.seq)
	if err != nil {
		return err
	}
	if err := workloads.Stage(s.env.FS, inputs); err != nil {
		return err
	}
	deps := scheduler.Deps{Locality: s.env.FS, Estimator: s.env.Prov}
	if s.cfg.Memo != nil {
		deps.Predictor = s.cfg.Memo
	}
	sched, err := scheduler.New(s.cfg.Policy, deps)
	if err != nil {
		return err
	}
	w.acct.Tasks = len(driver.Graph().All())
	w.acct.AdmitAt = now
	w.acct.Admitted = true
	w.acct.QueueWaitSec = now - w.acct.QueuedAt
	s.admittedC[w.profile.Name].Inc()
	s.queueWaitH.Observe(w.acct.QueueWaitSec)
	s.tr.Arg(w.span, "admitted", "true")
	if s.cfg.Hook != nil {
		s.cfg.Hook.OnAdmitted(now, w.profile.Name, w.id)
	}
	cfg := core.Config{
		WorkflowID: w.id,
		Tenant:     w.profile.Name,
		AMNode:     s.cfg.AMNode,
		MaxRetries: s.cfg.MaxTaskRetries,
		Chaos:      s.cfg.Chaos,
		Memo:       s.cfg.Memo,
		MemoPrefix: fmt.Sprintf("/svc/%s/w%03d", w.profile.Name, w.seq),
		OnTerminal: func(rep *core.Report) { s.onTerminal(w, rep) },
	}
	if _, err := core.Launch(s.env, driver, sched, cfg); err != nil {
		return err
	}
	return nil
}

// onTerminal settles the account when a workflow's AM reaches a terminal
// report, then re-pumps the queue.
func (s *Service) onTerminal(w *pendingWF, rep *core.Report) {
	s.gate.Finish()
	w.acct.Memoized = rep.Memoized
	var err error
	if rep.Err != nil {
		err = rep.Err
	}
	s.terminate(w, rep.Succeeded, err)
	s.pump()
}

// terminate finalizes one workflow's account and metrics.
func (s *Service) terminate(w *pendingWF, succeeded bool, err error) {
	now := s.eng.Now()
	w.acct.EndAt = now
	w.acct.Succeeded = succeeded
	if w.acct.Admitted {
		w.acct.MakespanSec = now - w.acct.AdmitAt
	}
	w.acct.E2ESec = now - w.acct.SubmitAt
	s.e2eH.Observe(w.acct.E2ESec)
	if err != nil {
		w.acct.Err = err.Error()
	}
	if succeeded {
		s.completedC.Inc()
	} else {
		s.failedC.Inc()
	}
	s.tr.Arg(w.span, "succeeded", fmt.Sprintf("%v", succeeded))
	s.tr.End(w.span)
	if s.cfg.Hook != nil {
		s.cfg.Hook.OnFinished(now, w.profile.Name, w.id, succeeded)
	}
	s.depthG.Set(float64(s.gate.Depth()))
	s.runningG.Set(float64(s.gate.Running()))
}

// QueueDepth returns the number of workflows waiting for admission.
func (s *Service) QueueDepth() int { return s.gate.Depth() }

// Running returns the number of admitted, unfinished workflows.
func (s *Service) Running() int { return s.gate.Running() }

// Accounts returns every workflow's record in submission order.
func (s *Service) Accounts() []*Account {
	out := append([]*Account(nil), s.accounts...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].SubmitAt != out[j].SubmitAt {
			return out[i].SubmitAt < out[j].SubmitAt
		}
		return out[i].ID < out[j].ID
	})
	return out
}
