package service

import (
	"fmt"

	"hiway/internal/wf"
	"hiway/internal/workloads"
)

// Workload kinds the service can generate per submission.
const (
	// WorkloadSNV is the §4.1 variant-calling workflow (default).
	WorkloadSNV = "snv"
	// WorkloadTRAPLINE is the §4.2 RNA-seq workflow.
	WorkloadTRAPLINE = "trapline"
)

// WorkloadSpec picks and sizes the DAG generator for a tenant's workflows.
// The defaults are deliberately small: service runs execute many workflow
// instances, so each is a scaled-down replica of the paper's DAG shapes.
type WorkloadSpec struct {
	// Kind is the generator: WorkloadSNV or WorkloadTRAPLINE.
	Kind string `json:"kind"`
	// Samples is the SNV sample count per workflow (default 1).
	Samples int `json:"samples,omitempty"`
	// FilesPerSample is the SNV read-file fan-out (default 2).
	FilesPerSample int `json:"filesPerSample,omitempty"`
	// FileSizeMB sizes each input file (default 64).
	FileSizeMB float64 `json:"fileSizeMB,omitempty"`
	// CPUSeconds overrides every task's CPU demand (default 40).
	CPUSeconds float64 `json:"cpuSeconds,omitempty"`
}

func (w *WorkloadSpec) setDefaults() {
	if w.Kind == "" {
		w.Kind = WorkloadSNV
	}
	if w.Samples <= 0 {
		w.Samples = 1
	}
	if w.FilesPerSample <= 0 {
		w.FilesPerSample = 2
	}
	if w.FileSizeMB <= 0 {
		w.FileSizeMB = 64
	}
	if w.CPUSeconds <= 0 {
		w.CPUSeconds = 40
	}
}

func (w *WorkloadSpec) validate() error {
	switch w.Kind {
	case WorkloadSNV, WorkloadTRAPLINE:
		return nil
	default:
		return fmt.Errorf("unknown workload kind %q", w.Kind)
	}
}

// buildWorkflow instantiates one workflow for a tenant's seq-th submission,
// rebased under a per-instance path prefix so concurrent instances never
// collide in HDFS.
func buildWorkflow(p *TenantProfile, seq int) (wf.StaticDriver, []workloads.Input, error) {
	return buildSpecWorkflow(p.Name, fmt.Sprintf("w%03d", seq), p.Workload)
}

// buildSpecWorkflow instantiates one generator-backed workflow for a named
// submission, rebased under /svc/<tenant>/<name> so concurrent instances
// never collide in HDFS. Both the seeded-arrival Service and the network
// Server build their workloads here, which is what makes a deterministic
// replay and a live HTTP run produce identical DAGs for the same
// (tenant, name, spec) triple.
func buildSpecWorkflow(tenant, name string, spec WorkloadSpec) (wf.StaticDriver, []workloads.Input, error) {
	spec.setDefaults()
	var driver wf.StaticDriver
	var inputs []workloads.Input
	switch spec.Kind {
	case WorkloadSNV:
		driver, inputs = workloads.SNV(workloads.SNVConfig{
			Samples:            spec.Samples,
			FilesPerSample:     spec.FilesPerSample,
			FileSizeMB:         spec.FileSizeMB,
			RefLocal:           true,
			AlignCPUSeconds:    spec.CPUSeconds,
			SortCPUSeconds:     spec.CPUSeconds,
			CallCPUSeconds:     spec.CPUSeconds,
			AnnotateCPUSeconds: spec.CPUSeconds,
		})
	case WorkloadTRAPLINE:
		driver, inputs = workloads.TRAPLINE(workloads.TRAPLINEConfig{
			LanesPerGroup:       1,
			ReadsSizeMB:         spec.FileSizeMB,
			TophatCPUSeconds:    spec.CPUSeconds,
			CufflinksCPUSeconds: spec.CPUSeconds,
			MergeCPUSeconds:     spec.CPUSeconds,
			DiffCPUSeconds:      spec.CPUSeconds,
		})
	default:
		return nil, nil, fmt.Errorf("service: unknown workload kind %q", spec.Kind)
	}
	prefix := fmt.Sprintf("/svc/%s/%s", tenant, name)
	if err := rebase(driver, inputs, prefix); err != nil {
		return nil, nil, err
	}
	return driver, inputs, nil
}

// rebase prefixes every task input, declared output, and staged input path
// with the per-instance prefix. It parses the driver once to reach the task
// graph; the AM's own Parse rebuilds the DAG over the rebased tasks.
func rebase(d wf.StaticDriver, inputs []workloads.Input, prefix string) error {
	if _, err := d.Parse(); err != nil {
		return fmt.Errorf("service: parsing workflow for rebase: %w", err)
	}
	for _, t := range d.Graph().All() {
		for i, in := range t.Inputs {
			t.Inputs[i] = prefix + in
		}
		for _, fis := range t.Declared {
			for i := range fis {
				fis[i].Path = prefix + fis[i].Path
			}
		}
	}
	for i := range inputs {
		inputs[i].Path = prefix + inputs[i].Path
	}
	return nil
}
