package service

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"

	"hiway/internal/provenance"
)

// maxBodyBytes bounds a submission payload (workflow source included).
const maxBodyBytes = 4 << 20

// Route describes one registered API endpoint. Routes is the single source
// of truth: Handler registers exactly this table, and the docs tests check
// SERVICE.md documents exactly this table.
type Route struct {
	// Method is the HTTP method.
	Method string
	// Pattern is the Go 1.22 ServeMux pattern.
	Pattern string
	// Summary is a one-line description.
	Summary string
}

// Routes returns the server's full endpoint table.
func Routes() []Route {
	return []Route{
		{Method: "POST", Pattern: "/v1/workflows", Summary: "submit a workflow (cuneiform, dax, galaxy, trace, or a built-in workload)"},
		{Method: "GET", Pattern: "/v1/workflows", Summary: "list all runs with their states"},
		{Method: "GET", Pattern: "/v1/workflows/{id}", Summary: "status of one run"},
		{Method: "GET", Pattern: "/v1/workflows/{id}/events", Summary: "live run event stream (Server-Sent Events)"},
		{Method: "GET", Pattern: "/v1/provenance", Summary: "query the merged provenance trace (?q=lineage|diff|memo-hits)"},
		{Method: "POST", Pattern: "/v1/drain", Summary: "stop admission and drain in-flight runs"},
		{Method: "GET", Pattern: "/metrics", Summary: "Prometheus text exposition of the server registry"},
		{Method: "GET", Pattern: "/healthz", Summary: "liveness probe"},
	}
}

// Handler builds the server's HTTP handler from the Routes table. Every
// route must have a registered implementation; a mismatch panics at
// construction, so the table and the mux cannot drift apart.
func (s *Server) Handler() http.Handler {
	impls := map[string]http.HandlerFunc{
		"POST /v1/workflows":            s.handleSubmit,
		"GET /v1/workflows":             s.handleList,
		"GET /v1/workflows/{id}":        s.handleStatus,
		"GET /v1/workflows/{id}/events": s.handleEvents,
		"GET /v1/provenance":            s.handleProvenance,
		"POST /v1/drain":                s.handleDrain,
		"GET /metrics":                  s.handleMetrics,
		"GET /healthz":                  s.handleHealth,
	}
	mux := http.NewServeMux()
	for _, rt := range Routes() {
		key := rt.Method + " " + rt.Pattern
		impl, ok := impls[key]
		if !ok {
			panic(fmt.Sprintf("service: route %q has no handler", key))
		}
		mux.HandleFunc(key, impl)
		delete(impls, key)
	}
	if len(impls) > 0 {
		panic(fmt.Sprintf("service: %d handlers not in the Routes table", len(impls)))
	}
	return mux
}

// writeJSON writes a JSON response with the given status.
func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(body)
}

func (s *Server) handleSubmit(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(io.LimitReader(req.Body, maxBodyBytes+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("reading body: %v", err)})
		return
	}
	if len(body) > maxBodyBytes {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			ErrorResponse{Error: fmt.Sprintf("payload exceeds %d bytes", maxBodyBytes)})
		return
	}
	var sr SubmitRequest
	if err := json.Unmarshal(body, &sr); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("malformed JSON: %v", err)})
		return
	}
	code, resp := s.submit(&sr)
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(s.cfg.RetryAfterSec))))
	}
	writeJSON(w, code, resp)
}

// listResponse is the JSON body of GET /v1/workflows.
type listResponse struct {
	Runs []RunStatus `json:"runs"`
}

func (s *Server) handleList(w http.ResponseWriter, req *http.Request) {
	runs := s.runs.All()
	statuses := make([]RunStatus, 0, len(runs))
	for _, r := range runs {
		statuses = append(statuses, r.Status())
	}
	sort.Slice(statuses, func(i, j int) bool { return statuses[i].ID < statuses[j].ID })
	writeJSON(w, http.StatusOK, listResponse{Runs: statuses})
}

func (s *Server) handleStatus(w http.ResponseWriter, req *http.Request) {
	r := s.runs.Load(req.PathValue("id"))
	if r == nil {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: fmt.Sprintf("no run %q", req.PathValue("id"))})
		return
	}
	writeJSON(w, http.StatusOK, r.Status())
}

func (s *Server) handleEvents(w http.ResponseWriter, req *http.Request) {
	r := s.runs.Load(req.PathValue("id"))
	if r == nil {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: fmt.Sprintf("no run %q", req.PathValue("id"))})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl, canFlush := w.(http.Flusher)
	write := func(ev RunEvent) {
		b, err := json.Marshal(ev)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, b)
		if canFlush {
			fl.Flush()
		}
	}
	ch, replay, cancel := r.subscribe()
	defer cancel()
	for _, ev := range replay {
		write(ev)
	}
	if ch == nil {
		return // run already terminal: replay was the whole stream
	}
	for {
		select {
		case ev, open := <-ch:
			if !open {
				return
			}
			write(ev)
		case <-req.Context().Done():
			return
		}
	}
}

// ProvenanceResponse is the JSON body of GET /v1/provenance without a query:
// a summary of the merged trace.
type ProvenanceResponse struct {
	// Events counts merged provenance events across all admitted runs.
	Events int `json:"events"`
	// MemoHits counts task completions spliced from the memo table.
	MemoHits int `json:"memoHits"`
}

// handleProvenance merges every admitted run's provenance buffer (the same
// deterministic shard merge FlushProvenance uses) and either summarizes it
// or, with ?q=, runs a provenance query — "lineage <path>",
// "diff <runA> <runB>", or "memo-hits [run]" — and returns the rendered
// text. Buffered events of still-running workflows may lag a flush interval.
func (s *Server) handleProvenance(w http.ResponseWriter, req *http.Request) {
	dst := provenance.NewMemStore()
	if _, err := s.FlushProvenance(dst); err != nil {
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	qs := req.URL.Query().Get("q")
	if qs == "" {
		evs, err := dst.Events()
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
			return
		}
		resp := ProvenanceResponse{Events: len(evs)}
		for _, ev := range evs {
			if ev.MemoHit {
				resp.MemoHits++
			}
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	q, err := provenance.ParseQuery(qs)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	out, err := provenance.RunQuery(dst, q)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, ErrorResponse{Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, out)
}

// DrainResponse is the JSON body of POST /v1/drain.
type DrainResponse struct {
	// Draining is true once admission has stopped.
	Draining bool `json:"draining"`
	// Queued counts runs still awaiting admission.
	Queued int `json:"queued"`
	// Running counts runs still executing.
	Running int `json:"running"`
}

func (s *Server) handleDrain(w http.ResponseWriter, req *http.Request) {
	s.StartDrain()
	s.mu.Lock()
	resp := DrainResponse{Draining: true, Queued: s.gate.Depth(), Running: s.gate.Running()}
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = s.obs.M().WritePrometheus(w)
}

func (s *Server) handleHealth(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}
