package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hiway/internal/provenance"
)

// serveProfiles is a small two-tenant mix with arrival rates, usable by
// both the live server and the deterministic replay.
func serveProfiles() []TenantProfile {
	return []TenantProfile{
		{Name: "alpha", Weight: 2, MaxContainers: 8, RatePerSec: 0.05,
			Workload: WorkloadSpec{Kind: WorkloadSNV, FileSizeMB: 16, CPUSeconds: 10}},
		{Name: "beta", Weight: 1, MaxContainers: 4, RatePerSec: 0.03, Burst: 2,
			Workload: WorkloadSpec{Kind: WorkloadSNV, FilesPerSample: 3, FileSizeMB: 16, CPUSeconds: 10}},
	}
}

// postJSON drives one request through the server's real handler chain.
func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(b))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func decodeError(t *testing.T, rec *httptest.ResponseRecorder) ErrorResponse {
	t.Helper()
	var er ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
		t.Fatalf("decoding error response %q: %v", rec.Body.String(), err)
	}
	return er
}

func workloadSubmission(tenant, name string) SubmitRequest {
	return SubmitRequest{Tenant: tenant, Name: name,
		Workload: &WorkloadSpec{Kind: WorkloadSNV, FileSizeMB: 16, CPUSeconds: 10}}
}

// waitDrained drains the server and fails the test if it does not settle.
func waitDrained(t *testing.T, s *Server) {
	t.Helper()
	s.StartDrain()
	select {
	case <-s.Drained():
	case <-time.After(30 * time.Second):
		t.Fatal("server did not drain")
	}
	s.Wait()
}

func TestServerRejectsBadSubmissions(t *testing.T) {
	s, err := NewServer(ServerConfig{}, serveProfiles())
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed JSON", `{"tenant": `, http.StatusBadRequest},
		{"missing tenant", `{"name":"w1","workload":{"kind":"snv"}}`, http.StatusBadRequest},
		{"unknown tenant", `{"tenant":"nobody","name":"w1","workload":{"kind":"snv"}}`, http.StatusForbidden},
		{"bad run name", `{"tenant":"alpha","name":"../etc","workload":{"kind":"snv"}}`, http.StatusBadRequest},
		{"no payload", `{"tenant":"alpha","name":"w1"}`, http.StatusBadRequest},
		{"both payloads", `{"tenant":"alpha","name":"w1","source":"x","lang":"trace","workload":{"kind":"snv"}}`, http.StatusBadRequest},
		{"unknown lang", `{"tenant":"alpha","name":"w1","source":"x","lang":"perl"}`, http.StatusBadRequest},
		{"unknown workload kind", `{"tenant":"alpha","name":"w1","workload":{"kind":"mapreduce"}}`, http.StatusBadRequest},
		{"unknown policy", `{"tenant":"alpha","name":"w1","policy":"random","workload":{"kind":"snv"}}`, http.StatusBadRequest},
		{"bad input spec", `{"tenant":"alpha","name":"w1","workload":{"kind":"snv"},"inputs":[{"path":"","sizeMB":0}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		req := httptest.NewRequest(http.MethodPost, "/v1/workflows", strings.NewReader(tc.body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != tc.want {
			t.Errorf("%s: got %d want %d (%s)", tc.name, rec.Code, tc.want, rec.Body.String())
		}
		if er := decodeError(t, rec); er.Error == "" {
			t.Errorf("%s: empty error message", tc.name)
		}
	}
	if got := int(s.acceptedC.Value()); got != 0 {
		t.Fatalf("rejected submissions were accepted: %d", got)
	}
}

func TestServerRunsWorkloadToCompletion(t *testing.T) {
	s, err := NewServer(ServerConfig{Nodes: 4}, serveProfiles())
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	rec := postJSON(t, h, "/v1/workflows", workloadSubmission("alpha", "w000"))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: got %d (%s)", rec.Code, rec.Body.String())
	}
	var resp SubmitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != "alpha-w000" || resp.State != StateQueued {
		t.Fatalf("submit response: %+v", resp)
	}

	run := s.Lookup(resp.ID)
	if run == nil {
		t.Fatal("run not registered")
	}
	select {
	case <-run.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("run did not finish")
	}

	st := get(t, h, "/v1/workflows/alpha-w000")
	if st.Code != http.StatusOK {
		t.Fatalf("status: got %d", st.Code)
	}
	var status RunStatus
	if err := json.Unmarshal(st.Body.Bytes(), &status); err != nil {
		t.Fatal(err)
	}
	if status.State != StateSucceeded {
		t.Fatalf("run state %q, error %q", status.State, status.Error)
	}
	if len(status.CompletedTasks) == 0 || status.Tasks != len(status.CompletedTasks) {
		t.Fatalf("completed tasks: %+v", status)
	}
	if status.MakespanSec <= 0 {
		t.Fatalf("makespan %v", status.MakespanSec)
	}
	for _, out := range status.Outputs {
		if !strings.HasPrefix(out, "/svc/alpha/w000/") {
			t.Fatalf("output %q not rebased under the run prefix", out)
		}
	}

	// Duplicate name → 409.
	if rec := postJSON(t, h, "/v1/workflows", workloadSubmission("alpha", "w000")); rec.Code != http.StatusConflict {
		t.Fatalf("duplicate: got %d", rec.Code)
	}
	// Unknown run → 404.
	if rec := get(t, h, "/v1/workflows/alpha-w999"); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown run: got %d", rec.Code)
	}

	// List shows the run terminal.
	lr := get(t, h, "/v1/workflows")
	var list struct {
		Runs []RunStatus `json:"runs"`
	}
	if err := json.Unmarshal(lr.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Runs) != 1 || list.Runs[0].ID != "alpha-w000" {
		t.Fatalf("list: %+v", list)
	}

	// SSE replay of a finished run carries the full lifecycle.
	ev := get(t, h, "/v1/workflows/alpha-w000/events")
	if ev.Code != http.StatusOK {
		t.Fatalf("events: got %d", ev.Code)
	}
	stream := ev.Body.String()
	for _, typ := range []string{EventQueued, EventAdmitted, EventProgress, EventFinished} {
		if !strings.Contains(stream, "event: "+typ+"\n") {
			t.Fatalf("stream missing %q:\n%s", typ, stream)
		}
	}

	// /metrics exposes the serve registry; /healthz answers.
	mr := get(t, h, "/metrics")
	if mr.Code != http.StatusOK || !strings.Contains(mr.Body.String(), "hiway_serve_completed_total 1") {
		t.Fatalf("metrics: %d\n%s", mr.Code, mr.Body.String())
	}
	if hr := get(t, h, "/healthz"); hr.Code != http.StatusOK {
		t.Fatalf("healthz: got %d", hr.Code)
	}

	waitDrained(t, s)
	if st := s.Stats(); st.Completed != 1 || st.Failed != 0 || st.Accepted != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestServerRunsCuneiformSource(t *testing.T) {
	s, err := NewServer(ServerConfig{Nodes: 2}, serveProfiles())
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	src := `deftask gen( out : inp ) @cpu 5 in bash *{ make $inp > $out }*
gen( inp: "seed.txt" );`
	rec := postJSON(t, h, "/v1/workflows", SubmitRequest{
		Tenant: "alpha", Name: "cf1", Lang: "cuneiform", Source: src,
		Inputs: []InputSpec{{Path: "seed.txt", SizeMB: 8}},
	})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: got %d (%s)", rec.Code, rec.Body.String())
	}
	run := s.Lookup("alpha-cf1")
	select {
	case <-run.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("run did not finish")
	}
	if st := run.Status(); st.State != StateSucceeded {
		t.Fatalf("state %q, error %q", st.State, st.Error)
	}
	waitDrained(t, s)
}

// gateHook blocks every admitted run until released, pinning runs in the
// running state so quota and backpressure paths can be tested without races.
type gateHook struct {
	admitted chan string
	release  chan struct{}
}

func (g *gateHook) OnQueued(now float64, tenant, id string)                       {}
func (g *gateHook) OnRejected(now float64, tenant, id string, retryAfter float64) {}
func (g *gateHook) OnFinished(now float64, tenant, id string, succeeded bool)     {}
func (g *gateHook) OnAdmitted(now float64, tenant, id string) {
	g.admitted <- id
	<-g.release
}

func TestServerBackpressureAndTenantQuota(t *testing.T) {
	hook := &gateHook{admitted: make(chan string, 16), release: make(chan struct{})}
	profiles := serveProfiles()
	profiles[0].MaxInFlight = 2
	s, err := NewServer(ServerConfig{
		Nodes: 2, MaxConcurrent: 1, MaxQueue: 1, RetryAfterSec: 7, Hook: hook,
	}, profiles)
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	// First run admitted (and parked in the hook), second queued.
	if rec := postJSON(t, h, "/v1/workflows", workloadSubmission("alpha", "w000")); rec.Code != http.StatusAccepted {
		t.Fatalf("w000: got %d", rec.Code)
	}
	select {
	case <-hook.admitted:
	case <-time.After(10 * time.Second):
		t.Fatal("w000 never admitted")
	}
	if rec := postJSON(t, h, "/v1/workflows", workloadSubmission("beta", "w000")); rec.Code != http.StatusAccepted {
		t.Fatalf("beta-w000: got %d", rec.Code)
	}

	// Queue is now full: a third submission gets 429 with the hint.
	rec := postJSON(t, h, "/v1/workflows", workloadSubmission("beta", "w001"))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-queue: got %d (%s)", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After header %q", got)
	}
	if er := decodeError(t, rec); er.RetryAfterSec != 7 {
		t.Fatalf("retryAfterSec %v", er.RetryAfterSec)
	}

	// Drain stops admission with 503 and answers the drain endpoint.
	dr := postJSON(t, h, "/v1/drain", struct{}{})
	if dr.Code != http.StatusAccepted {
		t.Fatalf("drain: got %d", dr.Code)
	}
	var drained DrainResponse
	if err := json.Unmarshal(dr.Body.Bytes(), &drained); err != nil {
		t.Fatal(err)
	}
	if !drained.Draining || drained.Running != 1 || drained.Queued != 1 {
		t.Fatalf("drain response: %+v", drained)
	}
	if rec := postJSON(t, h, "/v1/workflows", workloadSubmission("alpha", "w100")); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit: got %d", rec.Code)
	}

	close(hook.release)
	select {
	case <-s.Drained():
	case <-time.After(30 * time.Second):
		t.Fatal("server did not drain")
	}
	s.Wait()
	st := s.Stats()
	if st.Rejected != 1 || st.Completed != 2 {
		t.Fatalf("stats: %+v", st)
	}
	// The queued run was rejected once before acceptance? No — the 429 hit a
	// different run name; its ID must not exist.
	if s.Lookup("beta-w001") != nil {
		t.Fatal("rejected run must not be registered")
	}
}

func TestServerTenantMaxInFlight(t *testing.T) {
	hook := &gateHook{admitted: make(chan string, 16), release: make(chan struct{})}
	profiles := serveProfiles()
	profiles[0].MaxInFlight = 1
	s, err := NewServer(ServerConfig{
		Nodes: 2, MaxConcurrent: 4, MaxQueue: 16, RetryAfterSec: 3, Hook: hook,
	}, profiles)
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	if rec := postJSON(t, h, "/v1/workflows", workloadSubmission("alpha", "w000")); rec.Code != http.StatusAccepted {
		t.Fatalf("w000: got %d", rec.Code)
	}
	<-hook.admitted
	// alpha is at its quota; beta is not affected.
	rec := postJSON(t, h, "/v1/workflows", workloadSubmission("alpha", "w001"))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota: got %d", rec.Code)
	}
	if er := decodeError(t, rec); !strings.Contains(er.Error, "max in-flight") {
		t.Fatalf("error %q", er.Error)
	}
	if rec := postJSON(t, h, "/v1/workflows", workloadSubmission("beta", "w000")); rec.Code != http.StatusAccepted {
		t.Fatalf("beta unaffected: got %d", rec.Code)
	}
	<-hook.admitted
	close(hook.release)
	waitDrained(t, s)

	// The rejected ID, resubmitted after capacity freed, carries its
	// rejection history — but the server is drained now, so check the
	// reject bookkeeping survived on the record instead.
	if st := s.Stats(); st.Rejected != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestServerRejectionHistoryMergesIntoRun(t *testing.T) {
	hook := &gateHook{admitted: make(chan string, 16), release: make(chan struct{})}
	profiles := serveProfiles()
	profiles[0].MaxInFlight = 1
	s, err := NewServer(ServerConfig{Nodes: 2, MaxConcurrent: 4, MaxQueue: 16, Hook: hook}, profiles)
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	if rec := postJSON(t, h, "/v1/workflows", workloadSubmission("alpha", "w000")); rec.Code != http.StatusAccepted {
		t.Fatalf("w000: got %d", rec.Code)
	}
	<-hook.admitted
	if rec := postJSON(t, h, "/v1/workflows", workloadSubmission("alpha", "w001")); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("first try: got %d", rec.Code)
	}
	close(hook.release)
	if run := s.Lookup("alpha-w000"); run != nil {
		select {
		case <-run.Done():
		case <-time.After(30 * time.Second):
			t.Fatal("w000 did not finish")
		}
	}
	// Retry after capacity freed: accepted, carrying one rejection.
	if rec := postJSON(t, h, "/v1/workflows", workloadSubmission("alpha", "w001")); rec.Code != http.StatusAccepted {
		t.Fatalf("retry: got %d (%s)", rec.Code, rec.Body.String())
	}
	run := s.Lookup("alpha-w001")
	select {
	case <-run.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("w001 did not finish")
	}
	if st := run.Status(); st.Rejections != 1 {
		t.Fatalf("rejections %d", st.Rejections)
	}
	waitDrained(t, s)
}

func TestSeededSubmissionsDeterministic(t *testing.T) {
	profiles := serveProfiles()
	render := func(subs []TimedSubmission) string {
		b, err := json.Marshal(subs)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	a := SeededSubmissions(42, profiles, 300)
	b := SeededSubmissions(42, profiles, 300)
	if len(a) == 0 {
		t.Fatal("no submissions generated")
	}
	if render(a) != render(b) {
		t.Fatal("same seed produced different schedules")
	}
	if c := SeededSubmissions(43, profiles, 300); render(a) == render(c) {
		t.Fatal("different seeds produced identical schedules")
	}
	// Burst tenants submit Burst workflows per arrival with sequential names.
	perTenant := map[string][]string{}
	for _, ts := range a {
		perTenant[ts.Req.Tenant] = append(perTenant[ts.Req.Tenant], ts.Req.Name)
	}
	for tenant, names := range perTenant {
		for i, n := range names {
			if want := fmt.Sprintf("w%03d", i); n != want {
				t.Fatalf("tenant %s submission %d named %q, want %q", tenant, i, n, want)
			}
		}
	}
}

func TestDeterministicReplayIsReproducible(t *testing.T) {
	runReplay := func() ([]byte, ServerStats) {
		s, err := NewServer(ServerConfig{
			Nodes: 2, MaxConcurrent: 2, MaxQueue: 4, RetryAfterSec: 20, RetryLimit: 1,
			Deterministic: true,
		}, serveProfiles())
		if err != nil {
			t.Fatal(err)
		}
		if err := s.RunDeterministic(7, 200); err != nil {
			t.Fatal(err)
		}
		return s.Multiset(), s.Stats()
	}
	m1, st1 := runReplay()
	m2, st2 := runReplay()
	if !bytes.Equal(m1, m2) {
		t.Fatalf("same-seed replays diverged:\n%s\n--\n%s", m1, m2)
	}
	if st1 != st2 {
		t.Fatalf("same-seed replay stats diverged: %+v vs %+v", st1, st2)
	}
	if st1.Completed == 0 {
		t.Fatalf("replay completed nothing: %+v", st1)
	}
}

func TestDeterministicReplayMatchesLiveServer(t *testing.T) {
	const seed, window = 11, 150.0
	profiles := serveProfiles()

	det, err := NewServer(ServerConfig{Nodes: 2, MaxQueue: 1 << 10, Deterministic: true}, profiles)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.RunDeterministic(seed, window); err != nil {
		t.Fatal(err)
	}

	live, err := NewServer(ServerConfig{Nodes: 2, MaxQueue: 1 << 10}, profiles)
	if err != nil {
		t.Fatal(err)
	}
	h := live.Handler()
	for _, ts := range SeededSubmissions(seed, profiles, window) {
		if rec := postJSON(t, h, "/v1/workflows", ts.Req); rec.Code != http.StatusAccepted {
			t.Fatalf("live submit %s-%s: got %d", ts.Req.Tenant, ts.Req.Name, rec.Code)
		}
	}
	waitDrained(t, live)

	if got, want := live.Multiset(), det.Multiset(); !bytes.Equal(got, want) {
		t.Fatalf("live multiset diverged from deterministic replay:\nlive:\n%s\ndet:\n%s", got, want)
	}
	if live.Stats().Completed != det.Stats().Completed {
		t.Fatalf("completed counts diverged: %+v vs %+v", live.Stats(), det.Stats())
	}
}

func TestRunDeterministicRequiresDeterministicServer(t *testing.T) {
	s, err := NewServer(ServerConfig{}, serveProfiles())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunDeterministic(1, 10); err == nil {
		t.Fatal("expected an error on a non-deterministic server")
	}
	det, err := NewServer(ServerConfig{Deterministic: true}, serveProfiles())
	if err != nil {
		t.Fatal(err)
	}
	if err := det.RunDeterministic(1, 0); err == nil {
		t.Fatal("expected an error for a non-positive duration")
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(ServerConfig{Policy: "random"}, serveProfiles()); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := NewServer(ServerConfig{}, nil); err == nil {
		t.Fatal("empty profiles accepted")
	}
	// Deterministic servers need arrival rates.
	rateless := []TenantProfile{{Name: "only", Workload: WorkloadSpec{Kind: WorkloadSNV}}}
	if _, err := NewServer(ServerConfig{Deterministic: true}, rateless); err == nil {
		t.Fatal("deterministic server accepted a rate-less profile")
	}
	// A live server accepts rate-less profiles (HTTP-only tenants).
	if _, err := NewServer(ServerConfig{}, rateless); err != nil {
		t.Fatalf("live server rejected a rate-less profile: %v", err)
	}
}

func TestRunRegistryStriping(t *testing.T) {
	reg := newRunRegistry()
	ids := make([]string, 0, 64)
	for i := 0; i < 64; i++ {
		id := fmt.Sprintf("tenant-%02d-w%03d", i%7, i)
		ids = append(ids, id)
		if !reg.Store(id, &Run{ID: id}) {
			t.Fatalf("fresh id %q reported duplicate", id)
		}
	}
	for _, id := range ids {
		if got := reg.Load(id); got == nil || got.ID != id {
			t.Fatalf("Load(%q) = %v", id, got)
		}
	}
	if reg.Store(ids[0], &Run{ID: ids[0]}) {
		t.Fatal("duplicate store succeeded")
	}
	if reg.Load("missing") != nil {
		t.Fatal("missing id resolved")
	}
	if got := len(reg.All()); got != 64 {
		t.Fatalf("All() returned %d runs, want 64", got)
	}
}

func TestServerFlushProvenanceMergesAllRuns(t *testing.T) {
	s, err := NewServer(ServerConfig{Nodes: 2}, serveProfiles())
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	for i := 0; i < 3; i++ {
		if rec := postJSON(t, h, "/v1/workflows", workloadSubmission("alpha", fmt.Sprintf("w%03d", i))); rec.Code != http.StatusAccepted {
			t.Fatalf("submit %d: got %d", i, rec.Code)
		}
	}
	waitDrained(t, s)

	dst := provenance.NewMemStore()
	n, err := s.FlushProvenance(dst)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := dst.Events()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || len(evs) != n {
		t.Fatalf("flushed %d events, store has %d", n, len(evs))
	}
	seen := map[string]bool{}
	for i, ev := range evs {
		seen[ev.WorkflowID] = true
		if i > 0 && evs[i].Timestamp < evs[i-1].Timestamp {
			t.Fatalf("merged events out of order at %d", i)
		}
	}
	for i := 0; i < 3; i++ {
		if id := fmt.Sprintf("alpha-w%03d", i); !seen[id] {
			t.Fatalf("flushed trace missing run %s (have %v)", id, seen)
		}
	}
}

func TestServerSharedMemoAcrossTenants(t *testing.T) {
	s, err := NewServer(ServerConfig{Nodes: 4, Memo: true}, serveProfiles())
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	finish := func(id string) RunStatus {
		t.Helper()
		run := s.Lookup(id)
		if run == nil {
			t.Fatalf("run %s not registered", id)
		}
		select {
		case <-run.Done():
		case <-time.After(30 * time.Second):
			t.Fatalf("run %s did not finish", id)
		}
		var st RunStatus
		if err := json.Unmarshal(get(t, h, "/v1/workflows/"+id).Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		if st.State != StateSucceeded {
			t.Fatalf("run %s: state %q, error %q", id, st.State, st.Error)
		}
		return st
	}

	// Same workload spec, two tenants: the second run splices every task
	// from the first run's table entries and finishes in zero virtual time.
	if rec := postJSON(t, h, "/v1/workflows", workloadSubmission("alpha", "w000")); rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d (%s)", rec.Code, rec.Body.String())
	}
	cold := finish("alpha-w000")
	if cold.MakespanSec <= 0 {
		t.Fatalf("cold run makespan %v", cold.MakespanSec)
	}
	if rec := postJSON(t, h, "/v1/workflows", workloadSubmission("beta", "w000")); rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d (%s)", rec.Code, rec.Body.String())
	}
	warm := finish("beta-w000")
	if warm.MakespanSec != 0 {
		t.Fatalf("warm cross-tenant run executed: makespan %v", warm.MakespanSec)
	}
	if len(warm.CompletedTasks) != len(cold.CompletedTasks) {
		t.Fatalf("task multisets diverged: %v vs %v", warm.CompletedTasks, cold.CompletedTasks)
	}

	// The provenance endpoint summarizes and queries the merged trace.
	var pr ProvenanceResponse
	if err := json.Unmarshal(get(t, h, "/v1/provenance").Body.Bytes(), &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Events == 0 || pr.MemoHits != len(warm.CompletedTasks) {
		t.Fatalf("provenance summary: %+v", pr)
	}
	hits := get(t, h, "/v1/provenance?q=memo-hits")
	if hits.Code != http.StatusOK {
		t.Fatalf("memo-hits query: %d (%s)", hits.Code, hits.Body.String())
	}
	body := hits.Body.String()
	if !strings.Contains(body, "beta-w000") || !strings.Contains(body, "alpha-w000") {
		t.Fatalf("memo-hits attribution missing: %q", body)
	}
	if rec := get(t, h, "/v1/provenance?q=bogus"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bogus query: %d", rec.Code)
	}

	// The table's metric family lands on the server registry.
	metrics := get(t, h, "/metrics").Body.String()
	if !strings.Contains(metrics, "hiway_memo_hits_total") {
		t.Fatal("hiway_memo_* metrics missing from /metrics")
	}
	waitDrained(t, s)
}
