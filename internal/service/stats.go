package service

import (
	"math"
	"sort"
)

// TenantStats aggregates one tenant's service-level outcomes.
type TenantStats struct {
	Submitted  int // workflows first-submitted
	Admitted   int
	Succeeded  int
	Failed     int // admitted but terminated in failure
	Rejections int // rejected submission attempts
	Dropped    int // never ran: rejections exhausted the retry budget

	// MemoizedTasks counts tasks the tenant's workflows spliced from the
	// cluster memo table instead of executing.
	MemoizedTasks int

	QueueWaitP50Sec float64
	QueueWaitP99Sec float64
	E2EP99Sec       float64

	// Cost attribution: the tenant's container usage in core-seconds,
	// split by the class of node the containers ran on.
	OnDemandCoreSec float64
	SpotCoreSec     float64
}

// Stats summarizes a drained service run: the per-workflow accounts rolled
// up into the ladder's figures of merit (goodput, tail queue wait,
// rejection rate).
type Stats struct {
	WindowSec float64 // last workflow end (≥ the arrival window)

	Submitted  int // workflows first-submitted (excl. retry attempts)
	Attempts   int // submission attempts incl. post-rejection retries
	Admitted   int
	Succeeded  int
	Failed     int
	Rejections int
	Dropped    int

	// GoodputPerHour is successfully completed workflows per simulated
	// hour of the window — the quantity that must plateau (not collapse)
	// at overload.
	GoodputPerHour float64
	// RejectionRate is rejections over submission attempts.
	RejectionRate float64

	QueueWaitP50Sec float64
	QueueWaitP99Sec float64
	QueueWaitMaxSec float64
	E2EP50Sec       float64
	E2EP99Sec       float64

	// Cost accounting from the RM: node-seconds bill alive node lifetime by
	// class, CostUnits prices them (on-demand 1.0, spot autoscale.SpotPrice
	// equivalent 0.3), and the per-tenant core-seconds in Tenants attribute
	// the busy share.
	OnDemandNodeSec float64
	SpotNodeSec     float64
	CostUnits       float64

	// Memoization outcomes when a memo table was configured: tasks spliced
	// across all tenants, the table's lookup/hit counters, and the
	// cpu-seconds the splices avoided executing.
	MemoizedTasks   int
	MemoLookups     int64
	MemoHits        int64
	MemoCPUSavedSec float64

	Tenants map[string]*TenantStats
}

// spotPrice mirrors autoscale.SpotPrice without importing the package: the
// relative price of a spot node-second.
const spotPrice = 0.3

// Stats rolls up the accounts. Call after the engine has drained.
func (s *Service) Stats() *Stats {
	st := &Stats{Tenants: make(map[string]*TenantStats, len(s.profiles))}
	for _, p := range s.profiles {
		st.Tenants[p.Name] = &TenantStats{}
	}
	var waits, e2es []float64
	perWait := make(map[string][]float64)
	perE2E := make(map[string][]float64)
	window := s.cfg.DurationSec
	for _, a := range s.Accounts() {
		ts := st.Tenants[a.Tenant]
		st.Submitted++
		ts.Submitted++
		st.Rejections += a.Rejections
		ts.Rejections += a.Rejections
		if a.EndAt > window {
			window = a.EndAt
		}
		if a.Dropped {
			st.Dropped++
			ts.Dropped++
			continue
		}
		st.MemoizedTasks += a.Memoized
		ts.MemoizedTasks += a.Memoized
		if a.Admitted {
			st.Admitted++
			ts.Admitted++
			waits = append(waits, a.QueueWaitSec)
			perWait[a.Tenant] = append(perWait[a.Tenant], a.QueueWaitSec)
		}
		if a.EndAt == 0 && !a.Admitted {
			continue // still queued (engine not drained); no latency sample
		}
		e2es = append(e2es, a.E2ESec)
		perE2E[a.Tenant] = append(perE2E[a.Tenant], a.E2ESec)
		if a.Succeeded {
			st.Succeeded++
			ts.Succeeded++
		} else {
			st.Failed++
			ts.Failed++
		}
	}
	st.Attempts = st.Submitted + st.Rejections
	st.WindowSec = window
	if window > 0 {
		st.GoodputPerHour = float64(st.Succeeded) * 3600 / window
	}
	if st.Attempts > 0 {
		st.RejectionRate = float64(st.Rejections) / float64(st.Attempts)
	}
	st.QueueWaitP50Sec = quantile(waits, 0.50)
	st.QueueWaitP99Sec = quantile(waits, 0.99)
	st.QueueWaitMaxSec = quantile(waits, 1)
	st.E2EP50Sec = quantile(e2es, 0.50)
	st.E2EP99Sec = quantile(e2es, 0.99)
	for name, ts := range st.Tenants {
		ts.QueueWaitP50Sec = quantile(perWait[name], 0.50)
		ts.QueueWaitP99Sec = quantile(perWait[name], 0.99)
		ts.E2EP99Sec = quantile(perE2E[name], 0.99)
	}
	if s.cfg.Memo != nil {
		ms := s.cfg.Memo.Stats()
		st.MemoLookups = ms.Lookups
		st.MemoHits = ms.Hits
		st.MemoCPUSavedSec = ms.CPUSavedSec
	}
	cost := s.env.RM.CostReport()
	st.OnDemandNodeSec = cost.OnDemandNodeSec
	st.SpotNodeSec = cost.SpotNodeSec
	st.CostUnits = cost.CostUnits(spotPrice)
	for name, ts := range st.Tenants {
		if tc, ok := cost.Tenants[name]; ok {
			ts.OnDemandCoreSec = tc.OnDemandCoreSec
			ts.SpotCoreSec = tc.SpotCoreSec
		}
	}
	return st
}

// quantile returns the nearest-rank q-quantile of xs (q in [0,1]); 0 for an
// empty slice.
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	rank := int(math.Ceil(q*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}
