// Package service is the workflow-as-a-service tier over the simulated
// Hi-WAY substrate: the layer the paper's architecture implies (one YARN
// application master per workflow, many workflows from many users on one
// cluster, §"Hadoop YARN resource manager") but a single-run engine never
// exercises. It has two front doors over one admission machinery.
//
// # The seeded-arrival Service (hiway load)
//
// A seeded open-loop arrival generator submits workflows from mixed tenant
// profiles; an admission controller bounds concurrent AMs and applies
// queue-depth backpressure (rejection with a retry-after hint); per-tenant
// weighted fair-share quotas are enforced by internal/yarn's allocator; and
// every workflow's queue wait, makespan, end-to-end latency and rejections
// are accounted and exported through internal/obs as hiway_svc_* metrics
// and spans. Everything is deterministic by seed: the same Config and
// profiles produce byte-identical accounting across runs, which is what
// the soak tests pin.
//
// # The network Server (hiway serve)
//
// Server is the concurrent HTTP front-end over the same admission state
// machine (the shared fifoGate: bounded FIFO, concurrency cap, head-of-line
// blocking — hiway load and hiway serve admission semantics are identical
// by construction). Clients POST workflow payloads — cuneiform, dax,
// galaxy, or trace source, or a built-in workload spec — with tenant and
// policy selection; the server answers 202 with a run ID, 400/403/409 on
// invalid payloads, and 429 with a Retry-After hint under backpressure or
// per-tenant MaxInFlight quota. Status is polled per run or streamed as
// Server-Sent Events; /metrics serves the hiway_serve_* registry in
// Prometheus text format; /v1/drain (or a signal in the CLI) stops
// admission, lets in-flight runs finish, and FlushProvenance merges every
// run's provenance buffer with internal/shard's deterministic discipline.
//
// Concurrency follows internal/shard's sharded-substrate rule rather than
// fine-grained locking of one substrate: each admitted run executes on its
// own goroutine against its own engine, cluster, HDFS namespace, and YARN
// allocator (a discrete-event simulation is serial within one virtual
// clock, so sharing one across goroutines is impossible anyway). Shared
// state is confined to the mutex-guarded admission gate and a lock-striped
// run registry, which keeps status polling off the submission path. Because
// each run's substrate is seeded from its run ID, a run's outcome is a pure
// function of its submission — so a live concurrent server and the
// virtual-clock deterministic replay (ServerConfig.Deterministic plus
// RunDeterministic, which drives seeded arrivals through the same HTTP
// handlers in-process) produce byte-identical completed-task multisets.
package service
