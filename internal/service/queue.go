package service

// fifoGate is the admission state machine shared by the simulated service
// tier (Service) and the network front-end (Server): a bounded FIFO queue
// feeding a concurrency-capped set of running workflows. Admission never
// skips the queue head — head-of-line blocking is what preserves
// intra-tenant admission order, one of the audited service invariants —
// and beyond maxQueue the caller rejects instead of buffering, which is
// what keeps tail queue wait bounded at overload.
//
// The gate itself is not goroutine-safe: Service drives it from the
// single-threaded simulation loop, Server guards it with its own mutex.
// Routing both tiers through one state machine is what keeps `hiway load`
// and `hiway serve` admission semantics identical by construction.
type fifoGate[T any] struct {
	maxConcurrent int
	maxQueue      int
	queue         []T
	running       int
}

// newFifoGate returns a gate admitting at most maxConcurrent concurrent
// workflows and queueing at most maxQueue behind them.
func newFifoGate[T any](maxConcurrent, maxQueue int) *fifoGate[T] {
	return &fifoGate[T]{maxConcurrent: maxConcurrent, maxQueue: maxQueue}
}

// Full reports whether the queue is at the backpressure threshold: the
// caller must reject (with a retry-after hint) instead of enqueueing.
func (g *fifoGate[T]) Full() bool { return len(g.queue) >= g.maxQueue }

// Enqueue appends x to the queue tail. The caller has already checked Full.
func (g *fifoGate[T]) Enqueue(x T) { g.queue = append(g.queue, x) }

// Next pops the queue head and charges the concurrency budget, or reports
// false when the budget is spent or the queue is empty.
func (g *fifoGate[T]) Next() (T, bool) {
	var zero T
	if g.running >= g.maxConcurrent || len(g.queue) == 0 {
		return zero, false
	}
	x := g.queue[0]
	g.queue = g.queue[1:]
	g.running++
	return x, true
}

// Requeue puts x back at the queue head and uncharges the budget: the head
// could not launch yet (AM capacity) and must stay the head until resources
// free — never admit around it.
func (g *fifoGate[T]) Requeue(x T) {
	g.queue = append([]T{x}, g.queue...)
	g.running--
}

// Finish uncharges the concurrency budget for a workflow that reached a
// terminal state (or failed to launch with nothing else running).
func (g *fifoGate[T]) Finish() { g.running-- }

// Depth returns the number of queued workflows.
func (g *fifoGate[T]) Depth() int { return len(g.queue) }

// Running returns the number of charged (admitted, unfinished) workflows.
func (g *fifoGate[T]) Running() int { return g.running }
