package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"hiway/internal/cluster"
	"hiway/internal/core"
	"hiway/internal/memo"
	"hiway/internal/obs"
	"hiway/internal/provenance"
	"hiway/internal/recipes"
	"hiway/internal/scheduler"
	"hiway/internal/shard"
	"hiway/internal/wf"
	"hiway/internal/workloads"
	"hiway/internal/yarn"
)

// SSE event types on GET /v1/workflows/{id}/events.
const (
	// EventQueued fires when the submission is accepted into the queue.
	EventQueued = "queued"
	// EventAdmitted fires when the run's AM goroutine launches.
	EventAdmitted = "admitted"
	// EventProgress fires per completed task.
	EventProgress = "progress"
	// EventFinished fires once, when the run reaches a terminal state.
	EventFinished = "finished"
)

// knownPolicies are the scheduling policy names a submission may request.
var knownPolicies = map[string]bool{
	scheduler.PolicyFCFS:           true,
	scheduler.PolicyDataAware:      true,
	scheduler.PolicyRoundRobin:     true,
	scheduler.PolicyHEFT:           true,
	scheduler.PolicyAdaptiveGreedy: true,
}

// ServerConfig tunes the network front-end.
type ServerConfig struct {
	// Nodes sizes each run's private simulated cluster. Default 8.
	Nodes int
	// Policy is the default per-workflow scheduling policy (default fcfs);
	// a submission's Policy field overrides it per run.
	Policy string
	// MaxConcurrent caps concurrently running AM goroutines. Default 8.
	MaxConcurrent int
	// MaxQueue is the backpressure threshold: a submission arriving with
	// MaxQueue runs already queued is rejected with 429. Default 64.
	MaxQueue int
	// RetryAfterSec is the Retry-After hint attached to 429 rejections
	// (and the deterministic replay's client retry delay). Default 5.
	RetryAfterSec float64
	// RetryLimit is how many times the deterministic replay's simulated
	// client retries a rejected submission before dropping it. Default 1.
	RetryLimit int
	// MaxTaskRetries is forwarded to each run's core.Config. Default 3.
	MaxTaskRetries int
	// Deterministic switches the server onto a virtual clock with serial
	// run execution, driven by RunDeterministic through the same HTTP
	// handlers over an in-process transport. A deterministic server must
	// not serve real network traffic.
	Deterministic bool
	// Memo shares one cluster-wide memo table across every run the server
	// admits: repeated submissions of the same pipeline — any tenant, unless
	// its profile sets MemoOptOut — splice completed tasks from the table
	// instead of re-executing them. The table's hiway_memo_* metric family
	// lands on the server registry.
	Memo bool
	// Hook, if set, observes the server lifecycle. Hooks run outside the
	// server's internal lock and may block (the race e2e uses a blocking
	// OnAdmitted to pin 100 runs in flight at once); they must not call
	// back into the server.
	Hook Hook
}

func (c *ServerConfig) setDefaults() {
	if c.Nodes <= 0 {
		c.Nodes = 8
	}
	if c.Policy == "" {
		c.Policy = scheduler.PolicyFCFS
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 8
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.RetryAfterSec <= 0 {
		c.RetryAfterSec = 5
	}
	if c.RetryLimit < 0 {
		c.RetryLimit = 0
	} else if c.RetryLimit == 0 {
		c.RetryLimit = 1
	}
	if c.MaxTaskRetries <= 0 {
		c.MaxTaskRetries = 3
	}
}

// Run is one submitted workflow's server-side record: identity, lifecycle
// timestamps, the SSE event log, and the run's private provenance buffer.
type Run struct {
	// ID is "<tenant>-<name>", unique for the server's lifetime.
	ID string
	// Tenant is the submitting tenant.
	Tenant string
	// Name is the client-chosen run name.
	Name string

	req    SubmitRequest
	driver wf.Driver
	inputs []workloads.Input
	prov   *provenance.MemStore
	done   chan struct{}

	mu             sync.Mutex
	state          string
	submitAt       float64
	admitAt        float64
	endAt          float64
	rejections     int
	completedCount int
	completedTasks []string
	outputs        []string
	makespan       float64
	errMsg         string
	events         []RunEvent
	subs           []chan RunEvent
}

// Status snapshots the run for the status API.
func (r *Run) Status() RunStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RunStatus{
		ID:             r.ID,
		Tenant:         r.Tenant,
		Name:           r.Name,
		State:          r.state,
		SubmitAt:       r.submitAt,
		AdmitAt:        r.admitAt,
		EndAt:          r.endAt,
		Tasks:          r.completedCount,
		CompletedTasks: append([]string(nil), r.completedTasks...),
		Outputs:        append([]string(nil), r.outputs...),
		MakespanSec:    r.makespan,
		Rejections:     r.rejections,
		Error:          r.errMsg,
	}
}

// Done returns a channel closed when the run reaches a terminal state.
func (r *Run) Done() <-chan struct{} { return r.done }

// publish appends the event to the run's log and fans it out to SSE
// subscribers. A finished event closes every subscriber channel.
func (r *Run) publish(ev RunEvent) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	subs := append([]chan RunEvent(nil), r.subs...)
	closing := ev.Type == EventFinished
	if closing {
		r.subs = nil
	}
	r.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop rather than stall the run
		}
		if closing {
			close(ch)
		}
	}
}

// subscribe returns the events so far plus, for a live run, a channel of
// future events and a cancel func. For a finished run ch is nil.
func (r *Run) subscribe() (ch chan RunEvent, replay []RunEvent, cancel func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	replay = append([]RunEvent(nil), r.events...)
	if r.state == StateSucceeded || r.state == StateFailed {
		return nil, replay, func() {}
	}
	ch = make(chan RunEvent, 64)
	r.subs = append(r.subs, ch)
	return ch, replay, func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		for i, c := range r.subs {
			if c == ch {
				r.subs = append(r.subs[:i:i], r.subs[i+1:]...)
				break
			}
		}
	}
}

// rejectRecord accumulates 429s for a run ID that has not been accepted yet,
// so the eventual Run carries its full submission history.
type rejectRecord struct {
	count   int
	firstAt float64
}

// Server is the concurrent network front-end: it accepts workflow
// submissions over HTTP, routes them through the same fifoGate admission
// machinery as the seeded-arrival Service, and executes each admitted run
// on its own goroutine over a private simulation substrate (engine,
// cluster, HDFS, YARN RM) — the sharded-isolation discipline of
// internal/shard, which is what makes goroutine-per-AM execution race-free
// without locking the YARN allocator or HDFS namespace: no two goroutines
// ever share them. Cross-goroutine state is confined to the mutex-guarded
// admission gate and the lock-striped run registry.
type Server struct {
	cfg      ServerConfig
	profiles []TenantProfile
	tenants  map[string]*TenantProfile
	policies map[string]yarn.TenantPolicy

	obs   *obs.Obs
	memo  *memo.Table // nil unless cfg.Memo
	start time.Time
	vnow  float64 // virtual clock (deterministic mode only)

	mu            sync.Mutex
	gate          *fifoGate[*Run]
	inflight      map[string]int // per-tenant queued+running
	rejects       map[string]*rejectRecord
	admitted      []*Run // admission order, for the provenance merge
	peak          int
	draining      bool
	drainedClosed bool

	runs      *runRegistry
	drainedCh chan struct{}
	wg        sync.WaitGroup
	detReady  []*Run // admitted, awaiting serial execution (deterministic mode)

	submittedC *obs.Counter
	acceptedC  *obs.Counter
	rejectedC  *obs.Counter
	droppedC   *obs.Counter
	completedC *obs.Counter
	failedC    *obs.Counter
	depthG     *obs.Gauge
	runningG   *obs.Gauge
	peakG      *obs.Gauge
	drainingG  *obs.Gauge
	e2eH       *obs.Histogram
}

// NewServer validates the tenant profiles and builds the front-end. In
// deterministic mode every profile must carry an arrival rate (the replay
// generates traffic from them); a live server also accepts rate-less
// profiles, which submit over HTTP only.
func NewServer(cfg ServerConfig, profiles []TenantProfile) (*Server, error) {
	cfg.setDefaults()
	if !knownPolicies[cfg.Policy] {
		return nil, fmt.Errorf("service: unknown policy %q", cfg.Policy)
	}
	if err := validateProfiles(profiles, cfg.Deterministic); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		profiles:  profiles,
		tenants:   make(map[string]*TenantProfile, len(profiles)),
		policies:  TenantPolicies(profiles),
		start:     time.Now(),
		gate:      newFifoGate[*Run](cfg.MaxConcurrent, cfg.MaxQueue),
		inflight:  make(map[string]int),
		rejects:   make(map[string]*rejectRecord),
		runs:      newRunRegistry(),
		drainedCh: make(chan struct{}),
	}
	for i := range profiles {
		s.tenants[profiles[i].Name] = &profiles[i]
	}
	s.obs = obs.New(s.now)
	if cfg.Memo {
		s.memo = memo.New(0)
		for _, p := range profiles {
			if p.MemoOptOut {
				s.memo.SetOptOut(p.Name)
			}
		}
		s.memo.SetObs(s.obs)
	}
	m := s.obs.M()
	s.submittedC = m.Counter("hiway_serve_submissions_total", "workflow submission requests received")
	s.acceptedC = m.Counter("hiway_serve_accepted_total", "submissions accepted into the queue")
	s.rejectedC = m.Counter("hiway_serve_rejected_total", "submissions rejected with 429 (backpressure or tenant quota)")
	s.droppedC = m.Counter("hiway_serve_dropped_total", "replayed submissions dropped after exhausting retries")
	s.completedC = m.Counter("hiway_serve_completed_total", "runs that terminated successfully")
	s.failedC = m.Counter("hiway_serve_failed_total", "runs that terminated in failure")
	s.depthG = m.Gauge("hiway_serve_queue_depth", "runs currently queued for admission")
	s.runningG = m.Gauge("hiway_serve_running", "runs currently admitted and executing")
	s.peakG = m.Gauge("hiway_serve_running_peak", "high-water mark of concurrently executing runs")
	s.drainingG = m.Gauge("hiway_serve_draining", "1 while the server refuses new submissions")
	s.e2eH = m.Histogram("hiway_serve_e2e_latency_seconds",
		"seconds from first submission attempt to terminal state",
		[]float64{1, 5, 10, 30, 60, 120, 300, 600, 1800})
	return s, nil
}

// now returns the service clock: virtual seconds in deterministic mode,
// wall seconds since construction otherwise.
func (s *Server) now() float64 {
	if s.cfg.Deterministic {
		return s.vnow
	}
	return time.Since(s.start).Seconds()
}

// Obs exposes the server's observability bundle (the /metrics registry).
func (s *Server) Obs() *obs.Obs { return s.obs }

// Runs returns every run registered so far, in unspecified order.
func (s *Server) Runs() []*Run { return s.runs.All() }

// Lookup returns the run registered under id, or nil.
func (s *Server) Lookup(id string) *Run { return s.runs.Load(id) }

// PeakRunning returns the high-water mark of concurrently admitted runs.
func (s *Server) PeakRunning() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peak
}

// ServerStats summarizes the server's lifetime counters.
type ServerStats struct {
	Submitted   int `json:"submitted"`
	Accepted    int `json:"accepted"`
	Rejected    int `json:"rejected"`
	Dropped     int `json:"dropped"`
	Completed   int `json:"completed"`
	Failed      int `json:"failed"`
	PeakRunning int `json:"peakRunning"`
}

// Stats snapshots the lifetime counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Submitted:   int(s.submittedC.Value()),
		Accepted:    int(s.acceptedC.Value()),
		Rejected:    int(s.rejectedC.Value()),
		Dropped:     int(s.droppedC.Value()),
		Completed:   int(s.completedC.Value()),
		Failed:      int(s.failedC.Value()),
		PeakRunning: s.PeakRunning(),
	}
}

// submit is the transport-independent submission path behind
// POST /v1/workflows: validate, enforce drain/duplicate/quota/backpressure,
// then queue and dispatch. It returns the HTTP status and response body.
func (s *Server) submit(req *SubmitRequest) (int, any) {
	s.submittedC.Inc()
	if apiErr := req.validate(s.tenants); apiErr != nil {
		return apiErr.code, ErrorResponse{Error: apiErr.msg}
	}
	if req.Policy != "" && !knownPolicies[req.Policy] {
		return http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("unknown policy %q", req.Policy)}
	}
	driver, inputs, err := req.buildDriver()
	if err != nil {
		return http.StatusBadRequest, ErrorResponse{Error: err.Error()}
	}
	id := req.Tenant + "-" + req.Name
	now := s.now()
	prof := s.tenants[req.Tenant]

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return http.StatusServiceUnavailable, ErrorResponse{Error: "server is draining; not accepting submissions"}
	}
	if s.runs.Load(id) != nil {
		s.mu.Unlock()
		return http.StatusConflict, ErrorResponse{Error: fmt.Sprintf("run %q already exists", id)}
	}
	overQuota := prof.MaxInFlight > 0 && s.inflight[req.Tenant] >= prof.MaxInFlight
	if overQuota || s.gate.Full() {
		rej := s.rejects[id]
		if rej == nil {
			rej = &rejectRecord{firstAt: now}
			s.rejects[id] = rej
		}
		rej.count++
		s.rejectedC.Inc()
		retry := s.cfg.RetryAfterSec
		s.mu.Unlock()
		if s.cfg.Hook != nil {
			s.cfg.Hook.OnRejected(now, req.Tenant, id, retry)
		}
		msg := fmt.Sprintf("queue full (%d waiting)", s.cfg.MaxQueue)
		if overQuota {
			msg = fmt.Sprintf("tenant %q at max in-flight (%d)", req.Tenant, prof.MaxInFlight)
		}
		return http.StatusTooManyRequests, ErrorResponse{Error: msg, RetryAfterSec: retry}
	}
	r := &Run{
		ID:     id,
		Tenant: req.Tenant,
		Name:   req.Name,
		req:    *req,
		driver: driver,
		inputs: inputs,
		prov:   provenance.NewMemStore(),
		done:   make(chan struct{}),
		state:  StateQueued,
	}
	r.submitAt = now
	if rej := s.rejects[id]; rej != nil {
		r.rejections = rej.count
		r.submitAt = rej.firstAt
		delete(s.rejects, id)
	}
	s.runs.Store(id, r)
	s.inflight[req.Tenant]++
	s.gate.Enqueue(r)
	s.acceptedC.Inc()
	admitted := s.dispatchLocked()
	s.mu.Unlock()

	if s.cfg.Hook != nil {
		s.cfg.Hook.OnQueued(now, req.Tenant, id)
	}
	r.publish(RunEvent{Type: EventQueued, At: now})
	s.launch(admitted)
	return http.StatusAccepted, SubmitResponse{ID: id, State: StateQueued}
}

// dispatchLocked admits queued runs through the shared fifoGate in strict
// FIFO order while the concurrency budget allows, marking them running.
// Unlike the simulated Service, a Server run is always launchable (each run
// brings its own substrate), so the gate never needs a Requeue here. Called
// with s.mu held; the returned runs must be handed to launch after unlock.
func (s *Server) dispatchLocked() []*Run {
	var admitted []*Run
	now := s.now()
	for {
		r, ok := s.gate.Next()
		if !ok {
			break
		}
		r.mu.Lock()
		r.state = StateRunning
		r.admitAt = now
		r.mu.Unlock()
		s.admitted = append(s.admitted, r)
		admitted = append(admitted, r)
	}
	if n := s.gate.Running(); n > s.peak {
		s.peak = n
		s.peakG.Set(float64(n))
	}
	s.depthG.Set(float64(s.gate.Depth()))
	s.runningG.Set(float64(s.gate.Running()))
	return admitted
}

// launch starts execution of freshly admitted runs: one goroutine per AM in
// real mode, a serial ready-list in deterministic mode.
func (s *Server) launch(admitted []*Run) {
	for _, r := range admitted {
		r.mu.Lock()
		at := r.admitAt
		r.mu.Unlock()
		r.publish(RunEvent{Type: EventAdmitted, At: at})
		if s.cfg.Deterministic {
			if s.cfg.Hook != nil {
				s.cfg.Hook.OnAdmitted(at, r.Tenant, r.ID)
			}
			s.detReady = append(s.detReady, r)
			continue
		}
		s.wg.Add(1)
		go func(r *Run, at float64) {
			defer s.wg.Done()
			if s.cfg.Hook != nil {
				s.cfg.Hook.OnAdmitted(at, r.Tenant, r.ID)
			}
			rep, err := s.runWorkflow(r)
			s.finishRun(r, rep, err)
		}(r, at)
	}
}

// seedFor derives a run's substrate seed from its ID, so the same run gets
// the same HDFS block placement in real and deterministic mode.
func seedFor(id string) int64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// runAudit forwards AM task completions to the run's SSE stream.
type runAudit struct {
	s *Server
	r *Run
}

// OnTaskSubmitted is an uninteresting part of the AuditSink contract.
func (a *runAudit) OnTaskSubmitted(now float64, t *wf.Task) {}

// OnAttemptStart is an uninteresting part of the AuditSink contract.
func (a *runAudit) OnAttemptStart(now float64, t *wf.Task, node string, att int) {}

// OnAttemptEnd is an uninteresting part of the AuditSink contract.
func (a *runAudit) OnAttemptEnd(now float64, t *wf.Task, node string, att, exit int, accepted bool) {
}

// OnWorkflowEnd is an uninteresting part of the AuditSink contract; the
// terminal state is published by finishRun from the AM report instead.
func (a *runAudit) OnWorkflowEnd(now float64, succeeded bool) {}

// OnTaskCompleted publishes a progress event on the run's stream.
func (a *runAudit) OnTaskCompleted(now float64, t *wf.Task, node string) {
	at := a.s.now()
	a.r.mu.Lock()
	a.r.completedCount++
	n := a.r.completedCount
	a.r.mu.Unlock()
	a.r.publish(RunEvent{Type: EventProgress, At: at, Task: t.Name, Completed: n})
}

// runWorkflow executes one admitted run to completion on a private
// substrate. Everything it touches — engine, cluster, HDFS, YARN RM,
// provenance buffer — is materialized here and owned by this goroutine, so
// any number of runs execute concurrently without shared locks, and the
// result is a pure function of (run ID, payload, policy, Nodes): real and
// deterministic mode produce byte-identical completed-task sets per run.
func (s *Server) runWorkflow(r *Run) (*core.Report, error) {
	rec := &recipes.Recipe{
		Name: r.ID,
		Groups: []recipes.NodeGroup{{Count: s.cfg.Nodes, Spec: cluster.NodeSpec{
			VCores: 8, MemMB: 16384, CPUFactor: 1, DiskMBps: 200, NetMBps: 200,
		}}},
		SwitchMBps: 100 * float64(s.cfg.Nodes),
		YARN: yarn.Config{
			Fair:       true,
			AMResource: yarn.Resource{VCores: 0, MemMB: 256},
			Tenants:    s.policies,
		},
		Seed: seedFor(r.ID),
	}
	eng, env, err := rec.Materialize()
	if err != nil {
		return nil, err
	}
	// Swap in the run's private provenance buffer; FlushProvenance merges
	// all buffers deterministically at drain.
	prov, err := provenance.NewManager(r.prov)
	if err != nil {
		return nil, err
	}
	env.Prov = prov
	if err := workloads.Stage(env.FS, r.inputs); err != nil {
		return nil, err
	}
	policy := r.req.Policy
	if policy == "" {
		policy = s.cfg.Policy
	}
	deps := scheduler.Deps{Locality: env.FS, Estimator: env.Prov}
	if s.memo != nil {
		deps.Predictor = s.memo
	}
	sched, err := scheduler.New(policy, deps)
	if err != nil {
		return nil, err
	}
	memoPrefix := ""
	if r.req.Workload != nil {
		// Workload runs are rebased under a run-private root; stripping it
		// lets identical specs hit across runs and tenants. Source
		// submissions keep their payload-chosen paths verbatim.
		memoPrefix = fmt.Sprintf("/svc/%s/%s", r.Tenant, r.Name)
	}
	am, err := core.Launch(env, r.driver, sched, core.Config{
		WorkflowID: r.ID,
		Tenant:     r.Tenant,
		MaxRetries: s.cfg.MaxTaskRetries,
		Memo:       s.memo,
		MemoPrefix: memoPrefix,
		Audit:      &runAudit{s: s, r: r},
	})
	if err != nil {
		return nil, err
	}
	eng.Run()
	return am.Report()
}

// finishRun settles a run's terminal state, publishes the finished event,
// releases its admission slot, and dispatches the next queued runs.
func (s *Server) finishRun(r *Run, rep *core.Report, runErr error) {
	now := s.now()
	succeeded := runErr == nil && rep != nil && rep.Succeeded
	var completed []string
	var outputs []string
	makespan := 0.0
	if rep != nil {
		for _, res := range rep.Results {
			if res.Succeeded() {
				completed = append(completed, res.Task.Name)
			}
		}
		sort.Strings(completed)
		outputs = rep.Outputs
		makespan = rep.MakespanSec
	}
	state := StateFailed
	if succeeded {
		state = StateSucceeded
	}
	r.mu.Lock()
	r.state = state
	r.endAt = now
	r.completedTasks = completed
	r.completedCount = len(completed)
	r.outputs = outputs
	r.makespan = makespan
	if runErr != nil {
		r.errMsg = runErr.Error()
	}
	e2e := now - r.submitAt
	r.mu.Unlock()

	if succeeded {
		s.completedC.Inc()
	} else {
		s.failedC.Inc()
	}
	s.e2eH.Observe(e2e)
	r.publish(RunEvent{Type: EventFinished, At: now, State: state})
	close(r.done)

	s.mu.Lock()
	s.gate.Finish()
	s.inflight[r.Tenant]--
	admitted := s.dispatchLocked()
	s.checkDrainedLocked()
	s.mu.Unlock()

	if s.cfg.Hook != nil {
		s.cfg.Hook.OnFinished(now, r.Tenant, r.ID, succeeded)
	}
	s.launch(admitted)
}

// StartDrain stops admission: new submissions get 503, queued and running
// runs finish. Drained is signalled once nothing is queued or running.
func (s *Server) StartDrain() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		s.drainingG.Set(1)
	}
	s.checkDrainedLocked()
	s.mu.Unlock()
}

// checkDrainedLocked closes the drained channel once the server is draining
// and idle. Called with s.mu held.
func (s *Server) checkDrainedLocked() {
	if s.draining && !s.drainedClosed && s.gate.Depth() == 0 && s.gate.Running() == 0 {
		s.drainedClosed = true
		close(s.drainedCh)
	}
}

// Drained returns a channel closed when a drain has completed: StartDrain
// was called and every accepted run reached a terminal state.
func (s *Server) Drained() <-chan struct{} { return s.drainedCh }

// Wait blocks until every run goroutine has exited. Call after Drained to
// make the last run's bookkeeping visible before reading results.
func (s *Server) Wait() { s.wg.Wait() }

// FlushProvenance merges every admitted run's provenance buffer into dst
// using internal/shard's deterministic merge discipline — events ordered by
// (timestamp, admission index, within-run position) — so the flushed trace
// is independent of goroutine scheduling. Call after Drained.
func (s *Server) FlushProvenance(dst provenance.Store) (int, error) {
	s.mu.Lock()
	admitted := append([]*Run(nil), s.admitted...)
	s.mu.Unlock()
	shards := make([][]provenance.Event, len(admitted))
	for i, r := range admitted {
		evs, err := r.prov.Events()
		if err != nil {
			return 0, err
		}
		shards[i] = evs
	}
	merged := shard.MergeEvents(shards)
	if ba, ok := dst.(provenance.BatchAppender); ok {
		return len(merged), ba.AppendBatch(merged)
	}
	for _, ev := range merged {
		if err := dst.Append(ev); err != nil {
			return 0, err
		}
	}
	return len(merged), nil
}

// Multiset renders the canonical completed-task multiset: one line per
// terminal run — "<id> <state> <sorted task names>" — sorted by run ID.
// A real-HTTP run and a same-seed deterministic replay that accept the
// same submissions produce byte-identical multisets, whatever the
// interleaving of clients and run goroutines.
func (s *Server) Multiset() []byte {
	var lines []string
	for _, r := range s.runs.All() {
		st := r.Status()
		if st.State != StateSucceeded && st.State != StateFailed {
			continue
		}
		lines = append(lines, fmt.Sprintf("%s %s %s", st.ID, st.State, strings.Join(st.CompletedTasks, ",")))
	}
	sort.Strings(lines)
	return []byte(strings.Join(lines, "\n") + "\n")
}

// responseRecorder is the minimal in-process http.ResponseWriter the
// deterministic replay drives the real handlers with.
type responseRecorder struct {
	code int
	hdr  http.Header
	body bytes.Buffer
}

// Header implements http.ResponseWriter.
func (r *responseRecorder) Header() http.Header {
	if r.hdr == nil {
		r.hdr = make(http.Header)
	}
	return r.hdr
}

// WriteHeader implements http.ResponseWriter, keeping the first status.
func (r *responseRecorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
}

// Write implements http.ResponseWriter, buffering the body.
func (r *responseRecorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.body.Write(b)
}

func (r *responseRecorder) status() int {
	if r.code == 0 {
		return http.StatusOK
	}
	return r.code
}

// detEvent is one deterministic-replay timeline entry.
type detEvent struct {
	at   float64
	seq  int
	fire func()
}

// RunDeterministic drives a deterministic server through a full seeded
// traffic run on the virtual clock: SeededSubmissions(seed, profiles,
// durationSec) arrive through the real HTTP handlers over an in-process
// transport, 429s are retried after RetryAfterSec up to RetryLimit times
// (then dropped), admitted runs execute serially, and completions land at
// admitAt + makespan. The resulting Multiset is the ground truth a live
// run over real HTTP is compared against.
func (s *Server) RunDeterministic(seed int64, durationSec float64) error {
	if !s.cfg.Deterministic {
		return fmt.Errorf("service: RunDeterministic needs a server built with Deterministic=true")
	}
	if durationSec <= 0 {
		return fmt.Errorf("service: RunDeterministic needs a positive duration")
	}
	h := s.Handler()
	var queue []detEvent
	seq := 0
	push := func(at float64, fire func()) {
		e := detEvent{at: at, seq: seq, fire: fire}
		seq++
		i := sort.Search(len(queue), func(i int) bool {
			if queue[i].at != e.at {
				return queue[i].at > e.at
			}
			return queue[i].seq > e.seq
		})
		queue = append(queue, detEvent{})
		copy(queue[i+1:], queue[i:])
		queue[i] = e
	}
	var attemptAt func(ts TimedSubmission, attempt int) func()
	attemptAt = func(ts TimedSubmission, attempt int) func() {
		return func() {
			body, err := json.Marshal(&ts.Req)
			if err != nil {
				return
			}
			req, err := http.NewRequest(http.MethodPost, "/v1/workflows", bytes.NewReader(body))
			if err != nil {
				return
			}
			req.Header.Set("Content-Type", "application/json")
			rec := &responseRecorder{}
			h.ServeHTTP(rec, req)
			if rec.status() == http.StatusTooManyRequests {
				if attempt < s.cfg.RetryLimit {
					push(s.vnow+s.cfg.RetryAfterSec, attemptAt(ts, attempt+1))
				} else {
					s.droppedC.Inc()
				}
			}
		}
	}
	for _, ts := range SeededSubmissions(seed, s.profiles, durationSec) {
		push(ts.At, attemptAt(ts, 0))
	}
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		if e.at > s.vnow {
			s.vnow = e.at
		}
		e.fire()
		// Serially execute whatever the event admitted; each run completes
		// at its admission time plus its (virtually simulated) makespan.
		for len(s.detReady) > 0 {
			r := s.detReady[0]
			s.detReady = s.detReady[1:]
			rep, err := s.runWorkflow(r)
			makespan := 0.0
			if rep != nil {
				makespan = rep.MakespanSec
			}
			rr, rrep, rerr := r, rep, err
			push(s.vnow+makespan, func() { s.finishRun(rr, rrep, rerr) })
		}
	}
	return nil
}
