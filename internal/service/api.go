package service

import (
	"fmt"
	"math/rand"
	"net/http"
	"regexp"
	"sort"
	"strings"

	"hiway/internal/lang"
	"hiway/internal/wf"
	"hiway/internal/workloads"
)

// Run states reported by the status API.
const (
	// StateQueued means the submission was accepted and awaits admission.
	StateQueued = "queued"
	// StateRunning means the workflow's AM goroutine is executing.
	StateRunning = "running"
	// StateSucceeded means the workflow terminated with every task done.
	StateSucceeded = "succeeded"
	// StateFailed means the workflow terminated in failure.
	StateFailed = "failed"
)

// InputSpec stages one input file into the workflow's HDFS before launch.
type InputSpec struct {
	// Path is the HDFS path of the staged file.
	Path string `json:"path"`
	// SizeMB is the simulated file size.
	SizeMB float64 `json:"sizeMB"`
}

// SubmitRequest is the JSON body of POST /v1/workflows. Exactly one of
// Source (with Lang) or Workload must be set: Source submits workflow text
// in any supported frontend language, Workload asks the server to
// instantiate one of the built-in paper DAG generators.
type SubmitRequest struct {
	// Tenant names the submitting tenant; it must be registered with the
	// server (unknown tenants are rejected with 403).
	Tenant string `json:"tenant"`
	// Name is the client-chosen run name, unique per tenant; the run ID
	// becomes "<tenant>-<name>". Letters, digits, dot, underscore, dash.
	Name string `json:"name"`
	// Lang forces the frontend language for Source: cuneiform, dax,
	// galaxy, cwl, or trace. Empty Lang sniffs the source with the shared
	// detector (CWL documents carry cwlVersion, DAX is XML, Galaxy exports
	// are tagged JSON; the fallback is cuneiform).
	Lang string `json:"lang,omitempty"`
	// Source is the workflow text, parsed by the Lang frontend.
	Source string `json:"source,omitempty"`
	// Workload instantiates a built-in DAG generator instead of Source.
	Workload *WorkloadSpec `json:"workload,omitempty"`
	// Policy overrides the server's default scheduling policy for this run.
	Policy string `json:"policy,omitempty"`
	// Inputs are staged into the run's HDFS before launch.
	Inputs []InputSpec `json:"inputs,omitempty"`
	// Binds maps Galaxy workflow inputs to staged paths.
	Binds map[string]string `json:"binds,omitempty"`
}

// SubmitResponse is the JSON body of a 202 submission acceptance.
type SubmitResponse struct {
	// ID is the server-assigned run ID, "<tenant>-<name>".
	ID string `json:"id"`
	// State is the run's state at acceptance (queued).
	State string `json:"state"`
}

// ErrorResponse is the JSON body of every non-2xx API response.
type ErrorResponse struct {
	// Error describes what was rejected and why.
	Error string `json:"error"`
	// RetryAfterSec accompanies 429 responses: the client should retry
	// after this many seconds (also sent as the Retry-After header).
	RetryAfterSec float64 `json:"retryAfterSec,omitempty"`
}

// RunStatus is the JSON body of GET /v1/workflows/{id} (and, with only the
// identity and state fields populated, the elements of GET /v1/workflows).
type RunStatus struct {
	// ID is the run ID.
	ID string `json:"id"`
	// Tenant is the submitting tenant.
	Tenant string `json:"tenant"`
	// Name is the client-chosen run name.
	Name string `json:"name"`
	// State is queued, running, succeeded, or failed.
	State string `json:"state"`
	// SubmitAt is the first submission time in service seconds (wall
	// seconds since server start, or virtual seconds in deterministic
	// mode).
	SubmitAt float64 `json:"submitAt"`
	// AdmitAt is the admission time in service seconds.
	AdmitAt float64 `json:"admitAt,omitempty"`
	// EndAt is the terminal time in service seconds.
	EndAt float64 `json:"endAt,omitempty"`
	// Tasks is the task count of the parsed workflow (terminal states).
	Tasks int `json:"tasks,omitempty"`
	// CompletedTasks lists the completed tasks' signatures, sorted — the
	// per-run slice of the completed-task multiset.
	CompletedTasks []string `json:"completedTasks,omitempty"`
	// Outputs lists the workflow's output paths.
	Outputs []string `json:"outputs,omitempty"`
	// MakespanSec is the workflow's virtual makespan on its simulated
	// cluster — identical for the same submission in real and
	// deterministic mode.
	MakespanSec float64 `json:"makespanSec,omitempty"`
	// Rejections counts 429-rejected submission attempts for this run ID
	// before it was accepted.
	Rejections int `json:"rejections,omitempty"`
	// Error is the terminal error, if the run failed.
	Error string `json:"error,omitempty"`
}

// RunEvent is one Server-Sent Event on GET /v1/workflows/{id}/events.
type RunEvent struct {
	// Type is queued, admitted, progress, or finished.
	Type string `json:"type"`
	// At is the event time in service seconds.
	At float64 `json:"at"`
	// State accompanies finished events: succeeded or failed.
	State string `json:"state,omitempty"`
	// Task names the just-completed task on progress events.
	Task string `json:"task,omitempty"`
	// Completed counts completed tasks so far on progress events.
	Completed int `json:"completed,omitempty"`
}

// runName constrains client-chosen names to URL- and HDFS-safe tokens.
var runName = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]*$`)

// apiError is a validation failure with an HTTP status.
type apiError struct {
	code int
	msg  string
}

// Error returns the validation message.
func (e *apiError) Error() string { return e.msg }

func errf(code int, format string, args ...any) *apiError {
	return &apiError{code: code, msg: fmt.Sprintf(format, args...)}
}

// validate checks the request against the server's tenant set, returning an
// apiError carrying the HTTP status to reject with.
func (r *SubmitRequest) validate(tenants map[string]*TenantProfile) *apiError {
	if r.Tenant == "" {
		return errf(http.StatusBadRequest, "missing tenant")
	}
	if _, ok := tenants[r.Tenant]; !ok {
		return errf(http.StatusForbidden, "unknown tenant %q", r.Tenant)
	}
	if r.Name == "" || !runName.MatchString(r.Name) {
		return errf(http.StatusBadRequest, "run name %q must match %s", r.Name, runName)
	}
	hasSource, hasWorkload := r.Source != "", r.Workload != nil
	if hasSource == hasWorkload {
		return errf(http.StatusBadRequest, "exactly one of source or workload must be set")
	}
	if hasSource && r.Lang != "" && !lang.IsKnown(r.Lang) {
		return errf(http.StatusBadRequest, "unknown lang %q (want %s)", r.Lang, strings.Join(lang.Known(), ", "))
	}
	if hasWorkload {
		spec := *r.Workload
		spec.setDefaults()
		if err := spec.validate(); err != nil {
			return errf(http.StatusBadRequest, "%v", err)
		}
	}
	for _, in := range r.Inputs {
		if in.Path == "" || in.SizeMB <= 0 {
			return errf(http.StatusBadRequest, "input %q needs a path and a positive sizeMB", in.Path)
		}
	}
	return nil
}

// buildDriver materializes the request's workflow: the generator-backed
// path for Workload submissions (rebased under /svc/<tenant>/<name>), or a
// frontend parse of Source. The returned inputs include generator inputs
// plus the request's explicit InputSpecs.
func (r *SubmitRequest) buildDriver() (wf.Driver, []workloads.Input, error) {
	var driver wf.Driver
	var inputs []workloads.Input
	if r.Workload != nil {
		d, ins, err := buildSpecWorkflow(r.Tenant, r.Name, *r.Workload)
		if err != nil {
			return nil, nil, err
		}
		driver, inputs = d, ins
	} else {
		language := r.Lang
		if language == "" {
			language = lang.Detect("", r.Source)
		}
		d, err := lang.NewDriver(language, r.Name, r.Source, r.Binds)
		if err != nil {
			return nil, nil, fmt.Errorf("service: %v", err)
		}
		driver = d
	}
	for _, in := range r.Inputs {
		inputs = append(inputs, workloads.Input{Path: in.Path, SizeMB: in.SizeMB})
	}
	return driver, inputs, nil
}

// TimedSubmission is one seeded arrival: the request and the virtual time
// at which the deterministic replay submits it (and at which an external
// load generator should).
type TimedSubmission struct {
	// At is the arrival time in virtual seconds from the window start.
	At float64
	// Req is the submission payload.
	Req SubmitRequest
}

// SeededSubmissions pre-generates the open-loop arrival schedule for the
// profiles over [0, durationSec): per-tenant Poisson substreams (the same
// substream discipline as Service.Start, so adding a tenant does not
// perturb the others) with per-tenant sequence-numbered run names wNNN.
// The same (seed, profiles, duration) triple always yields the same
// submission list — it is the shared ground truth that the deterministic
// replay and a live HTTP load test compare against.
func SeededSubmissions(seed int64, profiles []TenantProfile, durationSec float64) []TimedSubmission {
	type arrival struct {
		at      float64
		profile int
	}
	var arrivals []arrival
	for i := range profiles {
		if profiles[i].RatePerSec <= 0 {
			continue
		}
		rng := rand.New(rand.NewSource(seed + int64(i+1)*0x9e3779b9))
		t := 0.0
		for {
			t += rng.ExpFloat64() / profiles[i].RatePerSec
			if t >= durationSec {
				break
			}
			arrivals = append(arrivals, arrival{at: t, profile: i})
		}
	}
	sort.SliceStable(arrivals, func(a, b int) bool {
		if arrivals[a].at != arrivals[b].at {
			return arrivals[a].at < arrivals[b].at
		}
		return arrivals[a].profile < arrivals[b].profile
	})
	seq := make([]int, len(profiles))
	var out []TimedSubmission
	for _, a := range arrivals {
		p := profiles[a.profile]
		burst := p.Burst
		if burst <= 0 {
			burst = 1
		}
		for b := 0; b < burst; b++ {
			spec := p.Workload
			out = append(out, TimedSubmission{
				At: a.at,
				Req: SubmitRequest{
					Tenant:   p.Name,
					Name:     fmt.Sprintf("w%03d", seq[a.profile]),
					Workload: &spec,
				},
			})
			seq[a.profile]++
		}
	}
	return out
}
