package service

import (
	"reflect"
	"testing"

	"hiway/internal/chaos"
	"hiway/internal/cluster"
	"hiway/internal/core"
	"hiway/internal/memo"
	"hiway/internal/recipes"
	"hiway/internal/sim"
	"hiway/internal/yarn"
)

// buildTestEnv materializes a small cluster configured for the profiles'
// tenant policies, mirroring how the load harness wires yarn and service.
func buildTestEnv(t *testing.T, nodes int, profiles []TenantProfile) (*sim.Engine, core.Env) {
	t.Helper()
	r := &recipes.Recipe{
		Name: "service-test",
		Groups: []recipes.NodeGroup{{
			Count: nodes,
			Spec:  cluster.NodeSpec{VCores: 8, MemMB: 16384, CPUFactor: 1, DiskMBps: 200, NetMBps: 200},
		}},
		SwitchMBps: 1000,
		YARN: yarn.Config{
			Fair:       true,
			AMResource: yarn.Resource{VCores: 0, MemMB: 256},
			Tenants:    TenantPolicies(profiles),
		},
		Seed: 1,
	}
	eng, env, err := r.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	return eng, env
}

func twoTenants() []TenantProfile {
	return []TenantProfile{
		{Name: "acme", Weight: 2, MaxContainers: 8, RatePerSec: 0.02},
		{Name: "labs", Weight: 1, MaxContainers: 4, RatePerSec: 0.01, Burst: 2},
	}
}

// runOnce drives one full service run and returns its accounts and stats.
func runOnce(t *testing.T, cfg Config, profiles []TenantProfile) ([]*Account, *Stats) {
	t.Helper()
	eng, env := buildTestEnv(t, 4, profiles)
	svc, err := New(eng, env, cfg, profiles)
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	eng.Run()
	if svc.QueueDepth() != 0 || svc.Running() != 0 {
		t.Fatalf("service did not drain: depth=%d running=%d", svc.QueueDepth(), svc.Running())
	}
	return svc.Accounts(), svc.Stats()
}

func TestServiceDeterministicAcrossRuns(t *testing.T) {
	cfg := Config{Seed: 42, DurationSec: 400, MaxConcurrent: 3, MaxQueue: 8}
	acc1, st1 := runOnce(t, cfg, twoTenants())
	acc2, st2 := runOnce(t, cfg, twoTenants())
	if len(acc1) == 0 {
		t.Fatal("no workflows submitted")
	}
	if !reflect.DeepEqual(acc1, acc2) {
		t.Fatal("same-seed runs produced different accounts")
	}
	if !reflect.DeepEqual(st1, st2) {
		t.Fatal("same-seed runs produced different stats")
	}
	if st1.Succeeded == 0 {
		t.Fatal("no workflow succeeded")
	}
	for _, a := range acc1 {
		if a.Dropped {
			continue
		}
		if !a.Admitted {
			t.Fatalf("%s drained without admission or drop", a.ID)
		}
		if a.E2ESec < a.MakespanSec {
			t.Fatalf("%s: e2e %.1f < makespan %.1f", a.ID, a.E2ESec, a.MakespanSec)
		}
		if a.QueueWaitSec < 0 {
			t.Fatalf("%s: negative queue wait", a.ID)
		}
	}
}

func TestBackpressureRejectsAndRetries(t *testing.T) {
	// One admission slot and a queue of one, flooded by a fast tenant:
	// backpressure must reject, retried submissions must be accounted, and
	// the retry budget must bound the drops.
	profiles := []TenantProfile{{Name: "flood", RatePerSec: 0.2, Burst: 2}}
	cfg := Config{Seed: 7, DurationSec: 200, MaxConcurrent: 1, MaxQueue: 1, RetryAfterSec: 20, RetryLimit: 1}
	accounts, st := runOnce(t, cfg, profiles)
	if st.Rejections == 0 {
		t.Fatal("expected rejections under overload")
	}
	if st.Dropped == 0 {
		t.Fatal("expected drops once the retry budget is exhausted")
	}
	if st.RejectionRate <= 0 || st.RejectionRate >= 1 {
		t.Fatalf("rejection rate = %.2f, want in (0,1)", st.RejectionRate)
	}
	if st.Attempts != st.Submitted+st.Rejections {
		t.Fatalf("attempts %d != submitted %d + rejections %d", st.Attempts, st.Submitted, st.Rejections)
	}
	if st.Submitted != st.Admitted+st.Dropped {
		t.Fatalf("submitted %d != admitted %d + dropped %d after drain", st.Submitted, st.Admitted, st.Dropped)
	}
	for _, a := range accounts {
		if a.Dropped && a.Rejections != cfg.RetryLimit+1 {
			t.Fatalf("%s dropped after %d rejections, want %d", a.ID, a.Rejections, cfg.RetryLimit+1)
		}
	}
}

// recordingHook captures the service lifecycle for ordering assertions.
type recordingHook struct {
	queued   map[string][]string // tenant → ids in queue-entry order
	admitted map[string][]string // tenant → ids in admission order
	running  int
	maxRun   int
	rejected int
}

func newRecordingHook() *recordingHook {
	return &recordingHook{queued: map[string][]string{}, admitted: map[string][]string{}}
}

func (h *recordingHook) OnQueued(now float64, tenant, id string) {
	h.queued[tenant] = append(h.queued[tenant], id)
}

func (h *recordingHook) OnRejected(now float64, tenant, id string, retryAfter float64) {
	h.rejected++
}

func (h *recordingHook) OnAdmitted(now float64, tenant, id string) {
	h.admitted[tenant] = append(h.admitted[tenant], id)
	h.running++
	if h.running > h.maxRun {
		h.maxRun = h.running
	}
}

func (h *recordingHook) OnFinished(now float64, tenant, id string, ok bool) { h.running-- }

func TestAdmissionCapAndIntraTenantOrder(t *testing.T) {
	profiles := twoTenants()
	hook := newRecordingHook()
	cfg := Config{Seed: 11, DurationSec: 400, MaxConcurrent: 2, MaxQueue: 32, Hook: hook}
	_, st := runOnce(t, cfg, profiles)
	if st.Admitted == 0 {
		t.Fatal("nothing admitted")
	}
	if hook.maxRun > cfg.MaxConcurrent {
		t.Fatalf("concurrent AMs peaked at %d, cap is %d", hook.maxRun, cfg.MaxConcurrent)
	}
	for tenant, q := range hook.queued {
		if !reflect.DeepEqual(q, hook.admitted[tenant]) {
			t.Fatalf("tenant %s admission order %v != queue order %v", tenant, hook.admitted[tenant], q)
		}
	}
}

func TestServiceUnderChaosIsDeterministic(t *testing.T) {
	profiles := []TenantProfile{{Name: "acme", RatePerSec: 0.01}}
	run := func() ([]*Account, *Stats) {
		cfg := Config{
			Seed: 3, DurationSec: 300, MaxConcurrent: 2, MaxQueue: 8,
			Chaos: chaos.NewPlan(9).WithCrashRate(0.3),
		}
		return runOnce(t, cfg, profiles)
	}
	acc1, st1 := run()
	acc2, st2 := run()
	if !reflect.DeepEqual(acc1, acc2) || !reflect.DeepEqual(st1, st2) {
		t.Fatal("chaos runs with the same seeds diverged")
	}
	if st1.Succeeded == 0 {
		t.Fatal("crash-rate chaos should not defeat task retries entirely")
	}
}

func TestTraplineWorkloadKind(t *testing.T) {
	profiles := []TenantProfile{{
		Name: "rna", RatePerSec: 0.01,
		Workload: WorkloadSpec{Kind: WorkloadTRAPLINE, FileSizeMB: 32, CPUSeconds: 20},
	}}
	cfg := Config{Seed: 5, DurationSec: 150, MaxConcurrent: 2, MaxQueue: 8}
	_, st := runOnce(t, cfg, profiles)
	if st.Succeeded == 0 {
		t.Fatal("trapline workflows did not complete")
	}
}

func TestNewRejectsBadProfiles(t *testing.T) {
	eng, env := buildTestEnv(t, 1, nil)
	cases := [][]TenantProfile{
		nil,
		{{Name: "", RatePerSec: 1}},
		{{Name: "a", RatePerSec: 1}, {Name: "a", RatePerSec: 1}},
		{{Name: "a", RatePerSec: 0}},
		{{Name: "a", RatePerSec: 1, Workload: WorkloadSpec{Kind: "nope"}}},
	}
	for i, profiles := range cases {
		if _, err := New(eng, env, Config{}, profiles); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestTenantPolicies(t *testing.T) {
	got := TenantPolicies(twoTenants())
	want := map[string]yarn.TenantPolicy{
		"acme": {Weight: 2, MaxContainers: 8},
		"labs": {Weight: 1, MaxContainers: 4},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TenantPolicies = %v, want %v", got, want)
	}
}

func TestQuantile(t *testing.T) {
	if q := quantile(nil, 0.99); q != 0 {
		t.Fatalf("empty quantile = %g", q)
	}
	xs := []float64{4, 1, 3, 2}
	if q := quantile(xs, 0.5); q != 2 {
		t.Fatalf("p50 = %g, want 2", q)
	}
	if q := quantile(xs, 0.99); q != 4 {
		t.Fatalf("p99 = %g, want 4", q)
	}
	if q := quantile(xs, 0); q != 1 {
		t.Fatalf("p0 = %g, want 1", q)
	}
	if got := []float64{4, 1, 3, 2}; !reflect.DeepEqual(xs, got) {
		t.Fatal("quantile mutated its input")
	}
}

// TestServiceCrossTenantMemoization pins the service-tier sharing premise:
// both tenants submit the same pipeline shape under run-private roots, so
// after the first execution the shared table serves every later admission —
// across tenant boundaries — and the roll-up attributes the splices.
func TestServiceCrossTenantMemoization(t *testing.T) {
	base := Config{Seed: 42, DurationSec: 400, MaxConcurrent: 3, MaxQueue: 8}
	_, stOff := runOnce(t, base, twoTenants())

	on := base
	on.Memo = memo.New(0)
	accounts, stOn := runOnce(t, on, twoTenants())

	// Arrivals are seed-driven and independent of execution speed.
	if stOn.Submitted != stOff.Submitted {
		t.Fatalf("memo changed arrivals: %d vs %d", stOn.Submitted, stOff.Submitted)
	}
	if stOn.Succeeded < stOff.Succeeded {
		t.Fatalf("memo lost completions: %d vs %d", stOn.Succeeded, stOff.Succeeded)
	}
	if stOn.MemoizedTasks == 0 || stOn.MemoHits == 0 || stOn.MemoCPUSavedSec <= 0 {
		t.Fatalf("no memoized work recorded: %+v", stOn)
	}
	if stOff.MemoizedTasks != 0 || stOff.MemoHits != 0 {
		t.Fatalf("memo-off run recorded memo work: %+v", stOff)
	}
	perTenant := 0
	for _, ts := range stOn.Tenants {
		perTenant += ts.MemoizedTasks
	}
	if perTenant != stOn.MemoizedTasks {
		t.Fatalf("tenant attribution %d != total %d", perTenant, stOn.MemoizedTasks)
	}
	// The first admitted workflow runs cold; at least one later one splices
	// its full task set.
	full := false
	for _, a := range accounts {
		if a.Admitted && a.Memoized == a.Tasks && a.Tasks > 0 {
			full = true
		}
	}
	if !full {
		t.Fatal("no workflow was fully served from the memo table")
	}
	if tenants := len(stOn.Tenants); tenants != 2 {
		t.Fatalf("tenants: %d", tenants)
	}
}

// TestServiceMemoOptOut pins the per-tenant escape hatch end to end: the
// opted-out tenant's workflows always execute, while the other tenant still
// benefits from the shared table.
func TestServiceMemoOptOut(t *testing.T) {
	profiles := twoTenants()
	profiles[1].MemoOptOut = true
	cfg := Config{Seed: 42, DurationSec: 400, MaxConcurrent: 3, MaxQueue: 8, Memo: memo.New(0)}
	_, st := runOnce(t, cfg, profiles)
	if st.Tenants["labs"].MemoizedTasks != 0 {
		t.Fatalf("opted-out tenant memoized %d tasks", st.Tenants["labs"].MemoizedTasks)
	}
	if st.Tenants["acme"].MemoizedTasks == 0 {
		t.Fatal("participating tenant never hit the shared table")
	}
}
