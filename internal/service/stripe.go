package service

import (
	"hash/fnv"
	"sync"
)

// runStripes is the lock-stripe count of the run registry. Sixteen stripes
// keep status polling from thousands of clients off the submission path's
// stripe with high probability while staying cache-friendly.
const runStripes = 16

// runRegistry is the server's lock-striped run table: run lookups (status,
// SSE subscriptions, the completed-multiset walk) take only their stripe's
// read lock, so a burst of submissions inserting under one stripe's write
// lock never serializes the whole registry. Keys are run IDs
// ("<tenant>-<name>"); striping is by FNV-1a hash.
type runRegistry struct {
	stripes [runStripes]struct {
		mu   sync.RWMutex
		runs map[string]*Run
	}
}

// newRunRegistry returns an empty registry with all stripes initialized.
func newRunRegistry() *runRegistry {
	r := &runRegistry{}
	for i := range r.stripes {
		r.stripes[i].runs = make(map[string]*Run)
	}
	return r
}

// stripeFor hashes id onto its stripe.
func (r *runRegistry) stripeFor(id string) *struct {
	mu   sync.RWMutex
	runs map[string]*Run
} {
	h := fnv.New32a()
	h.Write([]byte(id))
	return &r.stripes[h.Sum32()%runStripes]
}

// Load returns the run registered under id, or nil.
func (r *runRegistry) Load(id string) *Run {
	s := r.stripeFor(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.runs[id]
}

// Store registers run under id, reporting false if the id is taken.
func (r *runRegistry) Store(id string, run *Run) bool {
	s := r.stripeFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.runs[id]; ok {
		return false
	}
	s.runs[id] = run
	return true
}

// All returns every registered run in unspecified order.
func (r *runRegistry) All() []*Run {
	var out []*Run
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.RLock()
		for _, run := range s.runs {
			out = append(out, run)
		}
		s.mu.RUnlock()
	}
	return out
}
