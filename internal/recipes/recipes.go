// Package recipes provides declarative, machine-readable descriptions of
// execution infrastructures and workflow input data — the stand-in for the
// paper's Chef recipes orchestrated via Karamel (§3.6). A recipe captures
// everything needed to reproduce an experiment: the cluster (node groups,
// switch), the Hadoop configuration (HDFS block size/replication, YARN
// heartbeat, AM container size), and the input data to stage. Materialize
// turns a recipe into a ready-to-run environment; recipes round-trip
// through JSON so they can be stored next to the experiment that uses them.
package recipes

import (
	"encoding/json"
	"fmt"

	"hiway/internal/cluster"
	"hiway/internal/core"
	"hiway/internal/hdfs"
	"hiway/internal/provenance"
	"hiway/internal/sim"
	"hiway/internal/workloads"
	"hiway/internal/yarn"
)

// NodeGroup declares a homogeneous group of nodes.
type NodeGroup struct {
	Count int              `json:"count"`
	Spec  cluster.NodeSpec `json:"spec"`
}

// Recipe declares one reproducible setup.
type Recipe struct {
	Name                string            `json:"name"`
	Groups              []NodeGroup       `json:"groups"`
	SwitchMBps          float64           `json:"switchMBps"`
	ExternalPerFlowMBps float64           `json:"externalPerFlowMBps,omitempty"`
	HDFS                hdfs.Config       `json:"hdfs"`
	YARN                yarn.Config       `json:"yarn"`
	Seed                int64             `json:"seed"`
	Inputs              []workloads.Input `json:"inputs,omitempty"`
}

// Validate reports the first problem with the recipe.
func (r *Recipe) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("recipes: recipe needs a name")
	}
	if len(r.Groups) == 0 {
		return fmt.Errorf("recipes: recipe %q declares no node groups", r.Name)
	}
	total := 0
	for i, g := range r.Groups {
		if g.Count <= 0 {
			return fmt.Errorf("recipes: group %d of %q has count %d", i, r.Name, g.Count)
		}
		if err := g.Spec.Validate(); err != nil {
			return fmt.Errorf("recipes: group %d of %q: %w", i, r.Name, err)
		}
		total += g.Count
	}
	if total == 0 {
		return fmt.Errorf("recipes: recipe %q has no nodes", r.Name)
	}
	if r.SwitchMBps <= 0 {
		return fmt.Errorf("recipes: recipe %q needs positive switch bandwidth", r.Name)
	}
	return nil
}

// Materialize builds the simulated infrastructure the recipe describes and
// stages its input data: engine, cluster, HDFS, YARN, and an in-memory
// provenance manager (callers may swap the store).
func (r *Recipe) Materialize() (*sim.Engine, core.Env, error) {
	if err := r.Validate(); err != nil {
		return nil, core.Env{}, err
	}
	eng := sim.NewEngine()
	var specs []cluster.NodeSpec
	for _, g := range r.Groups {
		for i := 0; i < g.Count; i++ {
			specs = append(specs, g.Spec)
		}
	}
	cl, err := cluster.New(eng, cluster.Config{
		SwitchMBps:          r.SwitchMBps,
		ExternalPerFlowMBps: r.ExternalPerFlowMBps,
	}, specs)
	if err != nil {
		return nil, core.Env{}, err
	}
	fs := hdfs.New(cl, r.HDFS, r.Seed)
	rm := yarn.NewResourceManager(eng, cl, r.YARN)
	prov, err := provenance.NewManager(provenance.NewMemStore())
	if err != nil {
		return nil, core.Env{}, err
	}
	if err := workloads.Stage(fs, r.Inputs); err != nil {
		return nil, core.Env{}, err
	}
	return eng, core.Env{Cluster: cl, FS: fs, RM: rm, Prov: prov}, nil
}

// Marshal encodes the recipe as indented JSON.
func (r *Recipe) Marshal() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Parse decodes a JSON recipe.
func Parse(data []byte) (*Recipe, error) {
	var r Recipe
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("recipes: parsing: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}
