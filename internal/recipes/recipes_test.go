package recipes

import (
	"testing"

	"hiway/internal/cluster"
	"hiway/internal/workloads"
)

func valid() *Recipe {
	return &Recipe{
		Name:       "test-cluster",
		Groups:     []NodeGroup{{Count: 2, Spec: cluster.M3Large()}, {Count: 1, Spec: cluster.C32XLarge()}},
		SwitchMBps: 1000,
		Seed:       7,
		Inputs: []workloads.Input{
			{Path: "/in/a", SizeMB: 10},
			{Path: "/s3/b", SizeMB: 5, External: true},
		},
	}
}

func TestMaterialize(t *testing.T) {
	eng, env, err := valid().Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if eng == nil || env.Cluster.Size() != 3 {
		t.Fatalf("cluster size = %d", env.Cluster.Size())
	}
	if !env.FS.Exists("/in/a") || !env.FS.Exists("/s3/b") {
		t.Fatal("inputs not staged")
	}
	if env.RM == nil || env.Prov == nil {
		t.Fatal("env incomplete")
	}
	// Heterogeneous specs preserved in order.
	if env.Cluster.Node("node-02").Spec.VCores != 8 {
		t.Fatalf("third node spec = %+v", env.Cluster.Node("node-02").Spec)
	}
}

func TestValidateRejectsBadRecipes(t *testing.T) {
	cases := map[string]func(*Recipe){
		"no name":    func(r *Recipe) { r.Name = "" },
		"no groups":  func(r *Recipe) { r.Groups = nil },
		"zero count": func(r *Recipe) { r.Groups[0].Count = 0 },
		"bad spec":   func(r *Recipe) { r.Groups[0].Spec.VCores = 0 },
		"no switch":  func(r *Recipe) { r.SwitchMBps = 0 },
	}
	for name, mutate := range cases {
		r := valid()
		mutate(r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := valid()
	data, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Name != r.Name || len(r2.Groups) != 2 || r2.Groups[1].Spec.VCores != 8 {
		t.Fatalf("round trip lost data: %+v", r2)
	}
	if len(r2.Inputs) != 2 || !r2.Inputs[1].External {
		t.Fatalf("inputs lost: %+v", r2.Inputs)
	}
	if _, err := Parse([]byte("{")); err == nil {
		t.Fatal("bad JSON accepted")
	}
	if _, err := Parse([]byte(`{"name":"x"}`)); err == nil {
		t.Fatal("invalid recipe accepted")
	}
}
