package provdb

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func openTemp(t *testing.T) (*DB, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prov.db")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return db, path
}

func TestPutGetDelete(t *testing.T) {
	db, _ := openTemp(t)
	defer db.Close()
	if _, ok := db.Get("k"); ok {
		t.Fatal("missing key should not be found")
	}
	if err := db.Put("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if v, ok := db.Get("k"); !ok || string(v) != "v1" {
		t.Fatalf("got %q %v", v, ok)
	}
	if err := db.Put("k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if v, _ := db.Get("k"); string(v) != "v2" {
		t.Fatalf("overwrite lost: %q", v)
	}
	if err := db.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Get("k"); ok {
		t.Fatal("deleted key still present")
	}
	if err := db.Delete("k"); err != nil {
		t.Fatal("deleting a missing key must be a no-op")
	}
	if db.Len() != 0 {
		t.Fatalf("len = %d", db.Len())
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	db, _ := openTemp(t)
	defer db.Close()
	if err := db.Put("", []byte("x")); err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	db, _ := openTemp(t)
	defer db.Close()
	db.Put("k", []byte("orig"))
	v, _ := db.Get("k")
	v[0] = 'X'
	v2, _ := db.Get("k")
	if string(v2) != "orig" {
		t.Fatal("Get must return a copy")
	}
	// Mutating the caller's slice after Put must not affect the store.
	val := []byte("abc")
	db.Put("m", val)
	val[0] = 'Z'
	got, _ := db.Get("m")
	if string(got) != "abc" {
		t.Fatal("Put must copy the value")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	db, path := openTemp(t)
	for i := 0; i < 100; i++ {
		db.Put(fmt.Sprintf("key-%03d", i), []byte(fmt.Sprintf("val-%d", i)))
	}
	db.Delete("key-050")
	db.Put("key-051", []byte("overwritten"))
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Len() != 99 {
		t.Fatalf("len after reopen = %d, want 99", db2.Len())
	}
	if _, ok := db2.Get("key-050"); ok {
		t.Fatal("delete not persisted")
	}
	if v, _ := db2.Get("key-051"); string(v) != "overwritten" {
		t.Fatalf("overwrite not persisted: %q", v)
	}
}

func TestTornTailRecovery(t *testing.T) {
	db, path := openTemp(t)
	db.Put("a", []byte("1"))
	db.Put("b", []byte("2"))
	db.Close()
	// Simulate a crash mid-write: append garbage that looks like a
	// partial record.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xFF, 0x01, 0x02}) // torn header
	f.Close()
	db2, err := Open(path)
	if err != nil {
		t.Fatalf("torn tail must be recoverable: %v", err)
	}
	defer db2.Close()
	if db2.Len() != 2 {
		t.Fatalf("len = %d, want 2", db2.Len())
	}
	// The torn bytes were truncated: further writes then reopen work.
	db2.Put("c", []byte("3"))
	db2.Close()
	db3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if v, ok := db3.Get("c"); !ok || string(v) != "3" {
		t.Fatalf("write after recovery lost: %q %v", v, ok)
	}
}

func TestCorruptPayloadStopsReplay(t *testing.T) {
	db, path := openTemp(t)
	db.Put("a", []byte("1"))
	db.Put("b", []byte("2"))
	db.Close()
	// Flip a byte inside the second record's payload.
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF
	os.WriteFile(path, data, 0o644)
	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, ok := db2.Get("a"); !ok {
		t.Fatal("first record should survive")
	}
	if _, ok := db2.Get("b"); ok {
		t.Fatal("corrupt record should be dropped")
	}
}

func TestKeysSortedAndRange(t *testing.T) {
	db, _ := openTemp(t)
	defer db.Close()
	for _, k := range []string{"zeta", "alpha", "mid"} {
		db.Put(k, []byte(k))
	}
	keys := db.Keys()
	if len(keys) != 3 || keys[0] != "alpha" || keys[1] != "mid" || keys[2] != "zeta" {
		t.Fatalf("keys = %v", keys)
	}
	var visited []string
	db.Range(func(k string, v []byte) bool {
		visited = append(visited, k)
		return k != "mid" // stop after mid
	})
	if len(visited) != 2 || visited[1] != "mid" {
		t.Fatalf("range visited %v", visited)
	}
}

func TestCompactShrinksLogAndPreservesData(t *testing.T) {
	db, path := openTemp(t)
	for i := 0; i < 50; i++ {
		for j := 0; j < 10; j++ {
			db.Put(fmt.Sprintf("k%02d", i), bytes.Repeat([]byte{'x'}, 100))
		}
	}
	for i := 25; i < 50; i++ {
		db.Delete(fmt.Sprintf("k%02d", i))
	}
	before, _ := os.Stat(path)
	if db.GarbageRatio() < 0.5 {
		t.Fatalf("garbage ratio = %g, expected substantial garbage", db.GarbageRatio())
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Fatalf("compaction did not shrink: %d -> %d", before.Size(), after.Size())
	}
	if db.Len() != 25 {
		t.Fatalf("len after compact = %d", db.Len())
	}
	// Writes after compaction persist.
	db.Put("post", []byte("compaction"))
	db.Close()
	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Len() != 26 {
		t.Fatalf("reopen after compact: len = %d", db2.Len())
	}
	if v, _ := db2.Get("k00"); len(v) != 100 {
		t.Fatalf("value lost: %d bytes", len(v))
	}
}

func TestClosedDBErrors(t *testing.T) {
	db, _ := openTemp(t)
	db.Close()
	if err := db.Put("k", nil); err == nil {
		t.Fatal("Put on closed DB must fail")
	}
	if err := db.Compact(); err == nil {
		t.Fatal("Compact on closed DB must fail")
	}
	if err := db.Sync(); err == nil {
		t.Fatal("Sync on closed DB must fail")
	}
	if err := db.Close(); err != nil {
		t.Fatal("double Close must be a no-op")
	}
}

// Property: the database agrees with a plain map under a random operation
// sequence, including a reopen at the end.
func TestModelEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dir, err := os.MkdirTemp("", "provdb")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		path := filepath.Join(dir, "db")
		db, err := Open(path)
		if err != nil {
			return false
		}
		model := map[string]string{}
		keys := []string{"a", "b", "c", "d", "e"}
		for i := 0; i < 200; i++ {
			k := keys[rng.Intn(len(keys))]
			switch rng.Intn(3) {
			case 0, 1:
				v := fmt.Sprintf("v%d", rng.Intn(1000))
				if db.Put(k, []byte(v)) != nil {
					return false
				}
				model[k] = v
			case 2:
				if db.Delete(k) != nil {
					return false
				}
				delete(model, k)
			}
		}
		if rng.Intn(2) == 0 {
			if db.Compact() != nil {
				return false
			}
		}
		db.Close()
		db2, err := Open(path)
		if err != nil {
			return false
		}
		defer db2.Close()
		if db2.Len() != len(model) {
			return false
		}
		for k, want := range model {
			got, ok := db2.Get(k)
			if !ok || string(got) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	db, _ := openTemp(t)
	defer db.Close()
	const goroutines = 8
	const opsEach = 300
	done := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		go func() {
			for i := 0; i < opsEach; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i%20)
				switch i % 4 {
				case 0, 1:
					if err := db.Put(key, []byte(fmt.Sprintf("v%d", i))); err != nil {
						done <- err
						return
					}
				case 2:
					db.Get(key)
				case 3:
					if err := db.Delete(key); err != nil {
						done <- err
						return
					}
				}
			}
			done <- nil
		}()
	}
	// Compact concurrently with the writers.
	go func() { done <- db.Compact() }()
	for i := 0; i < goroutines+1; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// The log replays cleanly afterwards.
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
}
