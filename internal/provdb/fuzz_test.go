package provdb

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzReplay feeds arbitrary bytes to the log-replay path: Open must never
// panic or loop, and must either recover a valid prefix or truncate.
func FuzzReplay(f *testing.F) {
	// Seed with a valid log and a few corruptions of it.
	dir, err := os.MkdirTemp("", "provdb-fuzz-seed")
	if err != nil {
		f.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "seed.db")
	db, err := Open(path)
	if err != nil {
		f.Fatal(err)
	}
	db.Put("alpha", []byte("one"))
	db.Put("beta", []byte("two"))
	db.Delete("alpha")
	db.Close()
	seed, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})
	mutated := append([]byte(nil), seed...)
	if len(mutated) > 10 {
		mutated[10] ^= 0xA5
	}
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		p := filepath.Join(dir, "fuzz.db")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		db, err := Open(p)
		if err != nil {
			return // structured corruption may be rejected outright
		}
		// The recovered database must be usable.
		if err := db.Put("probe", []byte("x")); err != nil {
			t.Fatalf("Put after recovery: %v", err)
		}
		if v, ok := db.Get("probe"); !ok || string(v) != "x" {
			t.Fatalf("Get after recovery: %q %v", v, ok)
		}
		db.Close()
		// And reopenable.
		db2, err := Open(p)
		if err != nil {
			t.Fatalf("reopen after recovery: %v", err)
		}
		db2.Close()
	})
}
