// Package provdb is a small embedded key-value database used as the
// long-term provenance backend — the stand-in for the MySQL and Couchbase
// options of the paper's Provenance Manager (§3.5), built from scratch on
// the standard library.
//
// Design: a single append-only write-ahead log holds length- and
// CRC-prefixed records (puts and delete tombstones); an in-memory index
// maps each key to its latest value. Opening a database replays the log,
// tolerating a torn final record (a crashed writer) by truncating it.
// Compact rewrites only live records into a fresh log and atomically
// renames it into place.
package provdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
)

const (
	opPut    = byte(1)
	opDelete = byte(2)

	headerLen = 8 // 4-byte payload length + 4-byte CRC32
	// maxRecordLen bounds a single record, guarding replay against a
	// corrupt length prefix.
	maxRecordLen = 64 << 20
)

// ErrClosed is returned for operations on a closed database.
var ErrClosed = errors.New("provdb: database is closed")

// DB is an embedded key-value store. All methods are safe for concurrent
// use.
type DB struct {
	mu   sync.Mutex
	path string
	f    *os.File

	index     map[string][]byte
	liveBytes int64 // bytes of records still live (for compaction heuristics)
	logBytes  int64 // total bytes in the log
}

// Open opens (or creates) the database at path, replaying its log. A torn
// trailing record — the signature of a crash mid-write — is truncated away;
// corruption anywhere else is reported as an error.
func Open(path string) (*DB, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("provdb: opening %s: %w", path, err)
	}
	db := &DB{path: path, f: f, index: make(map[string][]byte)}
	validLen, err := db.replay()
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, fmt.Errorf("provdb: truncating torn tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	db.logBytes = validLen
	return db, nil
}

// replay scans the log, rebuilding the index, and returns the byte offset
// up to which the log is valid.
func (db *DB) replay() (int64, error) {
	data, err := io.ReadAll(db.f)
	if err != nil {
		return 0, fmt.Errorf("provdb: reading log: %w", err)
	}
	var off int64
	for int(off) < len(data) {
		rest := data[off:]
		if len(rest) < headerLen {
			break // torn header
		}
		plen := binary.LittleEndian.Uint32(rest[0:4])
		crc := binary.LittleEndian.Uint32(rest[4:8])
		if plen > maxRecordLen {
			break // corrupt length ⇒ treat as torn tail
		}
		if len(rest) < headerLen+int(plen) {
			break // torn payload
		}
		payload := rest[headerLen : headerLen+int(plen)]
		if crc32.ChecksumIEEE(payload) != crc {
			break // corrupt payload ⇒ stop replay here
		}
		if err := db.apply(payload); err != nil {
			return 0, err
		}
		off += int64(headerLen + int(plen))
	}
	return off, nil
}

// apply interprets one payload against the in-memory index.
func (db *DB) apply(payload []byte) error {
	if len(payload) < 5 {
		return fmt.Errorf("provdb: record too short (%d bytes)", len(payload))
	}
	op := payload[0]
	klen := binary.LittleEndian.Uint32(payload[1:5])
	if len(payload) < 5+int(klen) {
		return fmt.Errorf("provdb: record key length %d exceeds payload", klen)
	}
	key := string(payload[5 : 5+klen])
	switch op {
	case opPut:
		val := make([]byte, len(payload)-5-int(klen))
		copy(val, payload[5+int(klen):])
		if old, ok := db.index[key]; ok {
			db.liveBytes -= int64(len(old) + len(key))
		}
		db.index[key] = val
		db.liveBytes += int64(len(val) + len(key))
	case opDelete:
		if old, ok := db.index[key]; ok {
			db.liveBytes -= int64(len(old) + len(key))
		}
		delete(db.index, key)
	default:
		return fmt.Errorf("provdb: unknown record op %d", op)
	}
	return nil
}

func encodeRecord(op byte, key string, value []byte) []byte {
	payload := make([]byte, 5+len(key)+len(value))
	payload[0] = op
	binary.LittleEndian.PutUint32(payload[1:5], uint32(len(key)))
	copy(payload[5:], key)
	copy(payload[5+len(key):], value)
	rec := make([]byte, headerLen+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(payload))
	copy(rec[headerLen:], payload)
	return rec
}

// writeRecord appends one record to the log.
func (db *DB) writeRecord(op byte, key string, value []byte) error {
	if db.f == nil {
		return ErrClosed
	}
	rec := encodeRecord(op, key, value)
	if _, err := db.f.Write(rec); err != nil {
		return fmt.Errorf("provdb: appending record: %w", err)
	}
	db.logBytes += int64(len(rec))
	return nil
}

// Put stores value under key, replacing any previous value.
func (db *DB) Put(key string, value []byte) error {
	if key == "" {
		return errors.New("provdb: empty key")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.writeRecord(opPut, key, value); err != nil {
		return err
	}
	v := make([]byte, len(value))
	copy(v, value)
	if old, ok := db.index[key]; ok {
		db.liveBytes -= int64(len(old) + len(key))
	}
	db.index[key] = v
	db.liveBytes += int64(len(v) + len(key))
	return nil
}

// Get returns the value stored under key.
func (db *DB) Get(key string) ([]byte, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	v, ok := db.index[key]
	if !ok {
		return nil, false
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, true
}

// Delete removes key. Deleting a missing key is a no-op (no tombstone is
// written).
func (db *DB) Delete(key string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.index[key]; !ok {
		return nil
	}
	if err := db.writeRecord(opDelete, key, nil); err != nil {
		return err
	}
	db.liveBytes -= int64(len(db.index[key]) + len(key))
	delete(db.index, key)
	return nil
}

// Len returns the number of live keys.
func (db *DB) Len() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.index)
}

// Keys returns all live keys in sorted order.
func (db *DB) Keys() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]string, 0, len(db.index))
	for k := range db.index {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Range calls fn for each live key in sorted order until fn returns false.
func (db *DB) Range(fn func(key string, value []byte) bool) {
	for _, k := range db.Keys() {
		v, ok := db.Get(k)
		if !ok {
			continue
		}
		if !fn(k, v) {
			return
		}
	}
}

// GarbageRatio reports the fraction of log bytes occupied by dead records —
// a compaction trigger for callers.
func (db *DB) GarbageRatio() float64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.logBytes == 0 {
		return 0
	}
	dead := db.logBytes - db.liveBytes
	if dead < 0 {
		dead = 0
	}
	return float64(dead) / float64(db.logBytes)
}

// Compact rewrites the log keeping only live records, then atomically
// replaces the old log.
func (db *DB) Compact() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.f == nil {
		return ErrClosed
	}
	tmpPath := db.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("provdb: creating compaction file: %w", err)
	}
	keys := make([]string, 0, len(db.index))
	for k := range db.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var written int64
	for _, k := range keys {
		rec := encodeRecord(opPut, k, db.index[k])
		if _, err := tmp.Write(rec); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("provdb: writing compaction file: %w", err)
		}
		written += int64(len(rec))
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return err
	}
	if err := db.f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpPath, db.path); err != nil {
		return fmt.Errorf("provdb: swapping compacted log: %w", err)
	}
	f, err := os.OpenFile(db.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("provdb: reopening after compaction: %w", err)
	}
	db.f = f
	db.logBytes = written
	return nil
}

// Sync flushes the log to stable storage.
func (db *DB) Sync() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.f == nil {
		return ErrClosed
	}
	return db.f.Sync()
}

// Close flushes and closes the database.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.f == nil {
		return nil
	}
	err := db.f.Close()
	db.f = nil
	return err
}
