package provdb_test

import (
	"fmt"
	"os"
	"path/filepath"

	"hiway/internal/provdb"
)

// Example demonstrates the crash-safe lifecycle: put, reopen, read.
func Example() {
	dir, err := os.MkdirTemp("", "provdb-example")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "prov.db")

	db, err := provdb.Open(path)
	if err != nil {
		panic(err)
	}
	db.Put("workflow/1", []byte(`{"makespan": 42}`))
	db.Close()

	// Reopening replays the write-ahead log.
	db2, err := provdb.Open(path)
	if err != nil {
		panic(err)
	}
	defer db2.Close()
	v, ok := db2.Get("workflow/1")
	fmt.Println(ok, string(v))
	// Output:
	// true {"makespan": 42}
}
