package provdb

import (
	"fmt"
	"path/filepath"
	"testing"
)

func BenchmarkPut(b *testing.B) {
	db, err := Open(filepath.Join(b.TempDir(), "bench.db"))
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	value := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Put(fmt.Sprintf("key-%08d", i), value); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	db, err := Open(filepath.Join(b.TempDir(), "bench.db"))
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 1000; i++ {
		db.Put(fmt.Sprintf("key-%04d", i), []byte("value"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := db.Get(fmt.Sprintf("key-%04d", i%1000)); !ok {
			b.Fatal("missing key")
		}
	}
}

func BenchmarkReplay(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.db")
	db, _ := Open(path)
	for i := 0; i < 5000; i++ {
		db.Put(fmt.Sprintf("key-%05d", i%1000), []byte("some provenance event payload"))
	}
	db.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, err := Open(path)
		if err != nil {
			b.Fatal(err)
		}
		db.Close()
	}
}
