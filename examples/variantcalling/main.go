// Variant calling at scale: the paper's genomics workload (§4.1) on a
// simulated 24-node cluster, contrasting Hi-WAY's default data-aware
// scheduling policy with plain FCFS under a constrained shared switch.
// Data-aware scheduling assigns the I/O-heavy alignment tasks to nodes
// that hold an HDFS replica of their input reads, cutting network traffic.
//
//	go run ./examples/variantcalling
package main

import (
	"fmt"
	"log"

	"hiway/internal/cluster"
	"hiway/internal/core"
	"hiway/internal/hdfs"
	"hiway/internal/recipes"
	"hiway/internal/scheduler"
	"hiway/internal/workloads"
	"hiway/internal/yarn"
)

func run(policy string) (*core.Report, float64) {
	driver, inputs := workloads.SNV(workloads.SNVConfig{
		Samples:          6,
		FilesPerSample:   12,
		FileSizeMB:       512,
		CallSplitRegions: 8,
		AlignCPUSeconds:  400, SortCPUSeconds: 300,
		CallCPUSeconds: 500, AnnotateCPUSeconds: 300,
		RefLocal: true,
	})
	spec := cluster.XeonE52620()
	spec.VCores = 8
	spec.MemMB = 8*1024 + 1024
	r := &recipes.Recipe{
		Name:       "snv-" + policy,
		Groups:     []recipes.NodeGroup{{Count: 12, Spec: spec}},
		SwitchMBps: 300, // constrained shared switch
		HDFS:       hdfs.Config{BlockSizeMB: 1024, Replication: 2},
		YARN:       yarn.Config{},
		Seed:       11,
		Inputs:     inputs,
	}
	_, env, err := r.Materialize()
	if err != nil {
		log.Fatal(err)
	}
	sched, err := scheduler.New(policy, scheduler.Deps{Locality: env.FS, Estimator: env.Prov})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := core.Run(env, driver, sched, core.Config{ContainerVCores: 1, ContainerMemMB: 1024})
	if err != nil {
		log.Fatal(err)
	}
	// How local were the alignment reads?
	var local float64
	aligns := 0
	for _, res := range rep.Results {
		if res.Task.Name == "bowtie2" {
			local += env.FS.LocalFraction(res.Task.Inputs, res.Node)
			aligns++
		}
	}
	return rep, local / float64(aligns)
}

func main() {
	fcfs, fcfsLocal := run(scheduler.PolicyFCFS)
	da, daLocal := run(scheduler.PolicyDataAware)

	fmt.Println("SNV calling, 6 samples × 12 read files, 12 nodes, constrained switch")
	fmt.Printf("%-12s %10s %14s\n", "policy", "makespan", "local reads")
	fmt.Printf("%-12s %9.1fm %13.0f%%\n", "fcfs", fcfs.MakespanSec/60, fcfsLocal*100)
	fmt.Printf("%-12s %9.1fm %13.0f%%\n", "data-aware", da.MakespanSec/60, daLocal*100)
	fmt.Printf("\ndata-aware scheduling is %.0f%% faster by keeping alignment input local\n",
		(fcfs.MakespanSec/da.MakespanSec-1)*100)
}
