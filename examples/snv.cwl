{
  "$graph": [
    {
      "class": "Workflow",
      "doc": "SNV calling with Bowtie 2, SAMtools, VarScan, and ANNOVAR (paper section 4.1)",
      "id": "main",
      "inputs": [
        {
          "default": [
            {
              "class": "File",
              "location": "/reads/sample000/part00.fq"
            },
            {
              "class": "File",
              "location": "/reads/sample000/part01.fq"
            },
            {
              "class": "File",
              "location": "/reads/sample000/part02.fq"
            },
            {
              "class": "File",
              "location": "/reads/sample000/part03.fq"
            },
            {
              "class": "File",
              "location": "/reads/sample000/part04.fq"
            },
            {
              "class": "File",
              "location": "/reads/sample000/part05.fq"
            },
            {
              "class": "File",
              "location": "/reads/sample000/part06.fq"
            },
            {
              "class": "File",
              "location": "/reads/sample000/part07.fq"
            }
          ],
          "id": "reads_s000",
          "type": "File[]"
        }
      ],
      "outputs": [
        {
          "id": "annotated_s000",
          "outputSource": "annotate_s000/out",
          "type": "File"
        }
      ],
      "steps": [
        {
          "id": "align_s000",
          "in": [
            {
              "id": "reads",
              "source": "reads_s000"
            }
          ],
          "out": [
            "bam"
          ],
          "run": "#align",
          "scatter": "reads"
        },
        {
          "id": "sort_s000",
          "in": [
            {
              "id": "bams",
              "source": "align_s000/bam"
            },
            {
              "default": "4",
              "id": "nregions"
            }
          ],
          "out": [
            "regions"
          ],
          "run": "#sortscatter"
        },
        {
          "id": "call_s000",
          "in": [
            {
              "id": "region",
              "source": "sort_s000/regions"
            }
          ],
          "out": [
            "vcf"
          ],
          "run": "#call",
          "scatter": "region"
        },
        {
          "id": "annotate_s000",
          "in": [
            {
              "id": "vcfs",
              "source": "call_s000/vcf"
            }
          ],
          "out": [
            "out"
          ],
          "run": "#annotate"
        }
      ]
    },
    {
      "baseCommand": [
        "bowtie2",
        "-x",
        "/ref/hg38.idx",
        "-U",
        "$reads",
        "-S",
        "$bam"
      ],
      "class": "CommandLineTool",
      "hints": [
        {
          "class": "hiway:Profile",
          "cpuSeconds": 3000,
          "outSizeMB": {
            "bam": 1228.8
          }
        }
      ],
      "id": "align",
      "inputs": [
        {
          "id": "reads",
          "type": "File"
        }
      ],
      "outputs": [
        {
          "id": "bam",
          "type": "File"
        }
      ],
      "requirements": [
        {
          "class": "ResourceRequirement",
          "coresMin": 8,
          "ramMin": 6500
        }
      ]
    },
    {
      "baseCommand": [
        "samtools",
        "sort",
        "$bams",
        "|",
        "split-regions",
        "--n",
        "$nregions",
        "--out-dir",
        "$regions"
      ],
      "class": "CommandLineTool",
      "hints": [
        {
          "class": "hiway:Profile",
          "cpuSeconds": 2400,
          "outCount": {
            "regions": 4
          },
          "outSizeMB": {
            "regions": 2211.84
          }
        }
      ],
      "id": "sortscatter",
      "inputs": [
        {
          "id": "bams",
          "type": "File[]"
        },
        {
          "id": "nregions",
          "type": "string"
        }
      ],
      "outputs": [
        {
          "id": "regions",
          "type": "File[]"
        }
      ],
      "requirements": [
        {
          "class": "ResourceRequirement",
          "coresMin": 4,
          "ramMin": 4000
        }
      ]
    },
    {
      "baseCommand": [
        "varscan",
        "mpileup2snp",
        "$region",
        "\u003e",
        "$vcf"
      ],
      "class": "CommandLineTool",
      "hints": [
        {
          "class": "hiway:Profile",
          "cpuSeconds": 12000,
          "outSizeMB": {
            "vcf": 20
          }
        }
      ],
      "id": "call",
      "inputs": [
        {
          "id": "region",
          "type": "File"
        }
      ],
      "outputs": [
        {
          "id": "vcf",
          "type": "File"
        }
      ],
      "requirements": [
        {
          "class": "ResourceRequirement",
          "coresMin": 8,
          "ramMin": 6500
        }
      ]
    },
    {
      "baseCommand": [
        "annovar",
        "$vcfs",
        "\u003e",
        "$out"
      ],
      "class": "CommandLineTool",
      "hints": [
        {
          "class": "hiway:Profile",
          "cpuSeconds": 1600,
          "outSizeMB": {
            "out": 90
          }
        }
      ],
      "id": "annotate",
      "inputs": [
        {
          "id": "vcfs",
          "type": "File[]"
        }
      ],
      "outputs": [
        {
          "id": "out",
          "type": "File"
        }
      ],
      "requirements": [
        {
          "class": "ResourceRequirement",
          "coresMin": 2,
          "ramMin": 3000
        }
      ]
    }
  ],
  "cwlVersion": "v1.2"
}
