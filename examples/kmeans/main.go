// k-means: the paper's showcase for iterative workflows (§3.3). The
// Cuneiform workflow below contains an unbounded loop — assignment and
// update steps repeat until a convergence check emits an empty list — so
// its task graph cannot be known upfront; only Hi-WAY's dynamic Workflow
// Driver (not static schedulers) can execute it.
//
// The workflow runs on the simulated cluster; a Behavior hook stands in
// for the real clustering tool and reaches convergence after a configured
// number of refinements.
//
//	go run ./examples/kmeans
package main

import (
	"fmt"
	"log"

	"hiway/internal/cluster"
	"hiway/internal/core"
	"hiway/internal/hdfs"
	"hiway/internal/lang/cuneiform"
	"hiway/internal/recipes"
	"hiway/internal/scheduler"
	"hiway/internal/wf"
	"hiway/internal/workloads"
	"hiway/internal/yarn"
)

func main() {
	const convergeAfter = 5

	src := workloads.KMeansCuneiform("/data/points.csv", 3)
	driver := cuneiform.NewDriver("kmeans", src)

	r := &recipes.Recipe{
		Name:       "kmeans-cluster",
		Groups:     []recipes.NodeGroup{{Count: 4, Spec: cluster.M3Large()}},
		SwitchMBps: 2000,
		HDFS:       hdfs.Config{},
		YARN:       yarn.Config{},
		Seed:       7,
		Inputs:     []workloads.Input{{Path: "/data/points.csv", SizeMB: 250}},
	}
	_, env, err := r.Materialize()
	if err != nil {
		log.Fatal(err)
	}

	// The convergence check is a black box to the engine: it signals
	// "keep iterating" by producing a non-empty aggregate output.
	iterations := 0
	behavior := func(t *wf.Task) wf.Outcome {
		out := wf.DefaultOutcome(t)
		if t.Name == "converged" {
			iterations++
			if iterations <= convergeAfter {
				out.Outputs["flag"] = []wf.FileInfo{{Path: fmt.Sprintf("/data/flag-%d", t.ID), SizeMB: 0.01}}
			} else {
				out.Outputs["flag"] = nil // empty list: converged
			}
		}
		return out
	}

	rep, err := core.Run(env, driver, scheduler.NewDataAware(env.FS), core.Config{
		ContainerVCores: 2, ContainerMemMB: 4096,
		Behavior: behavior,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("k-means converged after %d refinement iterations\n", convergeAfter)
	fmt.Printf("executed %d dynamically discovered tasks in %.1fs simulated time\n",
		len(rep.Results), rep.MakespanSec)
	byName := map[string]int{}
	for _, res := range rep.Results {
		byName[res.Task.Name]++
	}
	for _, name := range []string{"init", "assign", "update", "converged"} {
		fmt.Printf("  %-10s × %d\n", name, byName[name])
	}
	fmt.Println("final centroids:", rep.Outputs)
}
