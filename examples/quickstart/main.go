// Quickstart: define a two-step Cuneiform workflow and execute it with
// real processes on the local machine. This is the fastest way to see the
// engine drive actual tools: the tasks below shell out to tr and wc.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"hiway/internal/lang/cuneiform"
	"hiway/internal/localexec"
	"hiway/internal/provenance"
)

const workflow = `
%% A minimal text pipeline: uppercase a file, then count its lines.
deftask upper( out : inp ) in bash *{ tr a-z A-Z < $inp > $out }*
deftask count( out : inp ) in bash *{ wc -l < $inp > $out }*

count( inp: upper( inp: "input/words.txt" ) );
`

func main() {
	workdir, err := os.MkdirTemp("", "hiway-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(workdir)

	// Stage the workflow's input data — the local analogue of putting
	// files into HDFS.
	if err := localexec.Stage(workdir, "input/words.txt", []byte("alpha\nbeta\ngamma\n")); err != nil {
		log.Fatal(err)
	}

	// Provenance events (workflow, task, file level) go to a JSONL trace.
	store, err := provenance.OpenFileStore(workdir + "/trace.jsonl")
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	prov, err := provenance.NewManager(store)
	if err != nil {
		log.Fatal(err)
	}

	driver := cuneiform.NewDriver("quickstart", workflow)
	rep, err := localexec.Run(driver, localexec.Config{WorkDir: workdir, Workers: 2, Prov: prov})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workflow %s: %d tasks in %.3fs\n", rep.WorkflowName, len(rep.Results), rep.MakespanSec)
	for _, r := range rep.Results {
		fmt.Printf("  task %-6s on %s: exec %.3fs\n", r.Task.Name, r.Node, r.ExecSec)
	}
	for _, out := range rep.Outputs {
		data, err := os.ReadFile(out)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("result file %s: %s", out, data)
	}
	events, _ := store.Events()
	fmt.Printf("provenance trace: %d events in %s/trace.jsonl\n", len(events), workdir)
}
