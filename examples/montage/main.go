// Montage: adaptive scheduling on a heterogeneous cluster (§4.3). The
// example generates a 0.25° Montage mosaic workflow as a Pegasus DAX
// document, then executes it repeatedly with the HEFT scheduler on a
// cluster where some nodes are taxed with synthetic CPU and I/O stress.
// Provenance accumulates across runs, so the runtime estimates — and with
// them the schedule — improve with every execution.
//
//	go run ./examples/montage
package main

import (
	"fmt"
	"log"

	"hiway/internal/cluster"
	"hiway/internal/core"
	"hiway/internal/hdfs"
	"hiway/internal/provenance"
	"hiway/internal/recipes"
	"hiway/internal/scheduler"
	"hiway/internal/workloads"
	"hiway/internal/yarn"
)

func heterogeneousCluster() []recipes.NodeGroup {
	master := cluster.M3Large()
	master.MemMB = 2048
	groups := []recipes.NodeGroup{
		{Count: 1, Spec: master},            // masters only
		{Count: 2, Spec: cluster.M3Large()}, // clean workers
	}
	stressedCPU := cluster.M3Large()
	stressedCPU.CPUHogs = 16
	stressedIO := cluster.M3Large()
	stressedIO.IOHogs = 16
	groups = append(groups,
		recipes.NodeGroup{Count: 2, Spec: stressedCPU},
		recipes.NodeGroup{Count: 2, Spec: stressedIO},
	)
	return groups
}

func main() {
	// Provenance persists across workflow executions in one shared store
	// (in production this would be the trace file in HDFS, or provdb).
	store := provenance.NewMemStore()

	fmt.Println("Montage 0.25° (parallelism 11) under HEFT on a heterogeneous cluster")
	fmt.Println("run  makespan   note")
	for i := 0; i < 6; i++ {
		driver, inputs := workloads.Montage(workloads.MontageConfig{Degree: 0.25, RuntimeScale: 0.2})
		r := &recipes.Recipe{
			Name:       "montage-heterogeneous",
			Groups:     heterogeneousCluster(),
			SwitchMBps: 2000,
			HDFS:       hdfs.Config{BlockSizeMB: 512, Replication: 3, ExcludeNodes: []string{"node-00"}},
			YARN:       yarn.Config{AMResource: yarn.Resource{VCores: 1, MemMB: 1024}},
			Seed:       int64(100 + i),
			Inputs:     inputs,
		}
		_, env, err := r.Materialize()
		if err != nil {
			log.Fatal(err)
		}
		env.Prov, err = provenance.NewManager(store) // loads earlier runs
		if err != nil {
			log.Fatal(err)
		}

		sched := scheduler.NewHEFTSeeded(env.Prov, int64(i))
		rep, err := core.Run(env, driver, sched, core.Config{
			ContainerVCores: 2, ContainerMemMB: 7000,
			AMNode: "node-00",
		})
		if err != nil {
			log.Fatal(err)
		}
		note := ""
		switch i {
		case 0:
			note = "no provenance: static plan spreads blindly, hits stressed nodes"
		case 1:
			note = "first estimates: critical tasks move to responsive nodes"
		case 5:
			note = "estimates converged: stable schedule"
		}
		fmt.Printf("%3d  %7.1fs  %s\n", i, rep.MakespanSec, note)
	}
	tasks, wfs := mustCounts(store)
	fmt.Printf("provenance accumulated: %d task events over %d workflow runs\n", tasks, wfs)
}

func mustCounts(store provenance.Store) (int64, int64) {
	m, err := provenance.NewManager(store)
	if err != nil {
		log.Fatal(err)
	}
	return m.Counts()
}
