module hiway

go 1.22
