package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hiway/internal/provdb"
	"hiway/internal/provenance"
)

func TestDetectLang(t *testing.T) {
	cases := map[string]string{
		"wf.cf":        "cuneiform",
		"wf.cuneiform": "cuneiform",
		"wf.dax":       "dax",
		"wf.xml":       "dax",
		"wf.ga":        "galaxy",
		"run.jsonl":    "trace",
		"run.trace":    "trace",
		"noext":        "cuneiform",
	}
	for path, want := range cases {
		if got := detectLang(path, ""); got != want {
			t.Errorf("detectLang(%q) = %q, want %q", path, got, want)
		}
	}
	if got := detectLang("wf.cf", "dax"); got != "dax" {
		t.Errorf("forced language ignored: %q", got)
	}
}

func TestParseBinds(t *testing.T) {
	m, err := parseBinds([]string{"reads=/data/a.fq", "genome=/ref/mm10"})
	if err != nil {
		t.Fatal(err)
	}
	if m["reads"] != "/data/a.fq" || m["genome"] != "/ref/mm10" {
		t.Fatalf("binds = %v", m)
	}
	if _, err := parseBinds([]string{"nope"}); err == nil {
		t.Fatal("malformed bind accepted")
	}
}

func TestBuildDriverLanguages(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cf := write("a.cf", `deftask t( out : ~x ) in bash *{ true }*`+"\n"+`t( x: "1" );`)
	daxFile := write("a.dax", `<adag name="x"><job id="J" name="t" runtime="1"><uses file="o" link="output"/></job></adag>`)
	traceFile := write("a.jsonl", `{"type":"task-end","taskId":1,"signature":"t","outputs":[{"path":"o","param":"out"}]}`)

	for _, p := range []string{cf, daxFile, traceFile} {
		d, err := buildDriver(p, detectLang(p, ""), nil)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if _, err := d.Parse(); err != nil {
			t.Fatalf("%s parse: %v", p, err)
		}
	}
	if _, err := buildDriver(filepath.Join(dir, "missing.cf"), "cuneiform", nil); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := buildDriver(cf, "klingon", nil); err == nil {
		t.Fatal("unknown language accepted")
	}
}

func TestRunSimEndToEnd(t *testing.T) {
	dir := t.TempDir()
	wfPath := filepath.Join(dir, "demo.cf")
	src := `deftask upper( out : inp ) @cpu 2 in bash *{ tr a-z A-Z < $inp > $out }*
upper( inp: "words.txt" );`
	if err := os.WriteFile(wfPath, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(dir, "run.jsonl")
	err := runSim([]string{"-w", wfPath, "-nodes", "2", "-input", "words.txt=5", "-prov", tracePath})
	if err != nil {
		t.Fatal(err)
	}
	// The written trace replays.
	if err := runSim([]string{"-w", tracePath, "-lang", "trace", "-input", "words.txt=5"}); err != nil {
		t.Fatalf("trace replay: %v", err)
	}
	// Error paths.
	if err := runSim([]string{}); err == nil {
		t.Fatal("missing -w accepted")
	}
	if err := runSim([]string{"-w", wfPath, "-input", "bad"}); err == nil {
		t.Fatal("malformed -input accepted")
	}
	if err := runSim([]string{"-w", wfPath, "-input", "x=notanumber"}); err == nil {
		t.Fatal("malformed -input size accepted")
	}
	if err := runSim([]string{"-w", wfPath, "-policy", "mystery", "-input", "words.txt=5"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestRunSimObservability exercises the -trace/-metrics/-decisions outputs:
// the Chrome export must be valid JSON with the full span taxonomy, the
// metrics snapshot must carry the core counters, and the decision log must
// name the policy.
func TestRunSimObservability(t *testing.T) {
	dir := t.TempDir()
	wfPath := filepath.Join(dir, "demo.cf")
	src := `deftask upper( out : inp ) @cpu 2 in bash *{ tr a-z A-Z < $inp > $out }*
upper( inp: "words.txt" );`
	if err := os.WriteFile(wfPath, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(dir, "run.json")
	metricsPath := filepath.Join(dir, "run.prom")
	decisionsPath := filepath.Join(dir, "decisions.log")
	err := runSim([]string{"-w", wfPath, "-nodes", "2", "-input", "words.txt=5",
		"-trace", tracePath, "-metrics", metricsPath, "-decisions", decisionsPath})
	if err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Cat string `json:"cat"`
			Ph  string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	cats := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		cats[ev.Cat] = true
	}
	for _, want := range []string{"workflow", "task", "attempt", "container", "phase"} {
		if !cats[want] {
			t.Errorf("trace missing %q spans (cats: %v)", want, cats)
		}
	}

	prom, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE hiway_core_attempts_total counter",
		"hiway_yarn_containers_allocated_total",
		"hiway_yarn_allocation_latency_seconds_bucket",
		"hiway_sched_assignments_total",
		"hiway_sim_events_total",
	} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("metrics missing %q:\n%s", want, prom)
		}
	}

	dec, err := os.ReadFile(decisionsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dec), "dataaware") {
		t.Errorf("decision log missing policy name:\n%s", dec)
	}
}

func TestRunInspect(t *testing.T) {
	dir := t.TempDir()
	daxPath := filepath.Join(dir, "wf.dax")
	src := `<adag name="x">
  <job id="A" name="first" runtime="10"><uses file="in" link="input"/><uses file="mid" link="output" sizeMB="5"/></job>
  <job id="B" name="second" runtime="20"><uses file="mid" link="input"/><uses file="out" link="output"/></job>
</adag>`
	if err := os.WriteFile(daxPath, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runInspect([]string{"-w", daxPath}); err != nil {
		t.Fatal(err)
	}
	// Iterative languages cannot be inspected statically.
	cfPath := filepath.Join(dir, "wf.cf")
	os.WriteFile(cfPath, []byte(`deftask t( out : ~x ) in bash *{ true }*`+"\n"+`t( x: "1" );`), 0o644)
	if err := runInspect([]string{"-w", cfPath}); err == nil {
		t.Fatal("inspecting a Cuneiform workflow must fail")
	}
	if err := runInspect([]string{}); err == nil {
		t.Fatal("missing -w accepted")
	}
}

func TestRunSimGanttAndTimeline(t *testing.T) {
	dir := t.TempDir()
	wfPath := filepath.Join(dir, "demo.cf")
	src := `deftask upper( out : inp ) @cpu 2 in bash *{ x }*
upper( inp: "words.txt" );`
	if err := os.WriteFile(wfPath, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	timeline := filepath.Join(dir, "t.csv")
	err := runSim([]string{"-w", wfPath, "-input", "words.txt=5", "-gantt", "-timeline", timeline})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(timeline)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty timeline CSV")
	}
}

func TestRunLocalEndToEnd(t *testing.T) {
	dir := t.TempDir()
	wfPath := filepath.Join(dir, "demo.cf")
	src := `deftask hello( out : ~name ) in bash *{ echo "hi $name" > $out }*
hello( name: "world" );`
	if err := os.WriteFile(wfPath, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	work := filepath.Join(dir, "work")
	if err := runLocal([]string{"-w", wfPath, "-workdir", work}); err != nil {
		t.Fatal(err)
	}
	matches, _ := filepath.Glob(filepath.Join(work, "data", "demo", "hello_*", "out"))
	if len(matches) != 1 {
		t.Fatalf("output files = %v", matches)
	}
	data, _ := os.ReadFile(matches[0])
	if string(data) != "hi world\n" {
		t.Fatalf("output = %q", data)
	}
	if err := runLocal([]string{}); err == nil {
		t.Fatal("missing -w accepted")
	}
}

func TestRunProv(t *testing.T) {
	dir := t.TempDir()
	wfPath := filepath.Join(dir, "demo.cf")
	src := `deftask t( out : ~x ) @cpu 1 in bash *{ y }*
t( x: "1" );`
	if err := os.WriteFile(wfPath, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(dir, "run.jsonl")
	if err := runSim([]string{"-w", wfPath, "-prov", tracePath}); err != nil {
		t.Fatal(err)
	}
	if err := runProv([]string{"-trace", tracePath}); err != nil {
		t.Fatal(err)
	}
	// Error paths.
	if err := runProv([]string{}); err == nil {
		t.Fatal("missing source accepted")
	}
	if err := runProv([]string{"-trace", tracePath, "-db", "x"}); err == nil {
		t.Fatal("both sources accepted")
	}
	if err := runProv([]string{"-trace", filepath.Join(dir, "ghost.jsonl")}); err == nil {
		t.Fatal("missing trace accepted")
	}
	// provdb-backed path.
	dbPath := filepath.Join(dir, "prov.db")
	db, err := provdb.Open(dbPath)
	if err != nil {
		t.Fatal(err)
	}
	store := provenance.NewDBStore(db)
	store.Append(provenance.Event{Type: provenance.WorkflowStart, WorkflowID: "w", WorkflowName: "n"})
	store.Append(provenance.Event{Type: provenance.TaskEnd, WorkflowID: "w", Signature: "s", Node: "n1", DurationSec: 3})
	store.Append(provenance.Event{Type: provenance.WorkflowEnd, WorkflowID: "w", DurationSec: 4, Succeeded: true})
	store.Close()
	if err := runProv([]string{"-db", dbPath}); err != nil {
		t.Fatal(err)
	}
}
