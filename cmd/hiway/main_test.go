package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"hiway/internal/lang"
	"hiway/internal/provdb"
	"hiway/internal/provenance"
	"hiway/internal/scheduler"
)

// TestMain doubles as a helper process: when HIWAY_SIM_HELPER is set, the
// test binary runs `sim` with the \x1f-separated arguments instead of the
// test suite. The shard-determinism test needs fresh processes because task
// and workflow IDs come from a process-global counter — two runs are only
// comparable byte-for-byte when both start from a fresh ID space.
func TestMain(m *testing.M) {
	if spec := os.Getenv("HIWAY_SIM_HELPER"); spec != "" {
		if err := runSim(strings.Split(spec, "\x1f")); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func TestDetectLang(t *testing.T) {
	cases := map[string]string{
		"wf.cf":        "cuneiform",
		"wf.cuneiform": "cuneiform",
		"wf.dax":       "dax",
		"wf.xml":       "dax",
		"wf.ga":        "galaxy",
		"wf.cwl":       "cwl",
		"run.jsonl":    "trace",
		"run.trace":    "trace",
		"noext":        "cuneiform",
	}
	for path, want := range cases {
		if got := lang.Detect(path, ""); got != want {
			t.Errorf("lang.Detect(%q) = %q, want %q", path, got, want)
		}
	}
}

func TestParseBinds(t *testing.T) {
	m, err := parseBinds([]string{"reads=/data/a.fq", "genome=/ref/mm10"})
	if err != nil {
		t.Fatal(err)
	}
	if m["reads"] != "/data/a.fq" || m["genome"] != "/ref/mm10" {
		t.Fatalf("binds = %v", m)
	}
	if _, err := parseBinds([]string{"nope"}); err == nil {
		t.Fatal("malformed bind accepted")
	}
}

func TestBuildDriverLanguages(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cf := write("a.cf", `deftask t( out : ~x ) in bash *{ true }*`+"\n"+`t( x: "1" );`)
	daxFile := write("a.dax", `<adag name="x"><job id="J" name="t" runtime="1"><uses file="o" link="output"/></job></adag>`)
	traceFile := write("a.jsonl", `{"type":"task-end","taskId":1,"signature":"t","outputs":[{"path":"o","param":"out"}]}`)

	for _, p := range []string{cf, daxFile, traceFile} {
		d, _, err := buildDriver(p, "", nil)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if _, err := d.Parse(); err != nil {
			t.Fatalf("%s parse: %v", p, err)
		}
	}
	if _, _, err := buildDriver(filepath.Join(dir, "missing.cf"), "cuneiform", nil); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, _, err := buildDriver(cf, "klingon", nil); err == nil {
		t.Fatal("unknown language accepted")
	}
}

func TestRunSimEndToEnd(t *testing.T) {
	dir := t.TempDir()
	wfPath := filepath.Join(dir, "demo.cf")
	src := `deftask upper( out : inp ) @cpu 2 in bash *{ tr a-z A-Z < $inp > $out }*
upper( inp: "words.txt" );`
	if err := os.WriteFile(wfPath, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(dir, "run.jsonl")
	err := runSim([]string{"-w", wfPath, "-nodes", "2", "-input", "words.txt=5", "-prov", tracePath})
	if err != nil {
		t.Fatal(err)
	}
	// The written trace replays.
	if err := runSim([]string{"-w", tracePath, "-lang", "trace", "-input", "words.txt=5"}); err != nil {
		t.Fatalf("trace replay: %v", err)
	}
	// Error paths.
	if err := runSim([]string{}); err == nil {
		t.Fatal("missing -w accepted")
	}
	if err := runSim([]string{"-w", wfPath, "-input", "bad"}); err == nil {
		t.Fatal("malformed -input accepted")
	}
	if err := runSim([]string{"-w", wfPath, "-input", "x=notanumber"}); err == nil {
		t.Fatal("malformed -input size accepted")
	}
	if err := runSim([]string{"-w", wfPath, "-policy", "mystery", "-input", "words.txt=5"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestRunSimObservability exercises the -trace/-metrics/-decisions outputs:
// the Chrome export must be valid JSON with the full span taxonomy, the
// metrics snapshot must carry the core counters, and the decision log must
// name the policy.
func TestRunSimObservability(t *testing.T) {
	dir := t.TempDir()
	wfPath := filepath.Join(dir, "demo.cf")
	src := `deftask upper( out : inp ) @cpu 2 in bash *{ tr a-z A-Z < $inp > $out }*
upper( inp: "words.txt" );`
	if err := os.WriteFile(wfPath, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(dir, "run.json")
	metricsPath := filepath.Join(dir, "run.prom")
	decisionsPath := filepath.Join(dir, "decisions.log")
	err := runSim([]string{"-w", wfPath, "-nodes", "2", "-input", "words.txt=5",
		"-trace", tracePath, "-metrics", metricsPath, "-decisions", decisionsPath})
	if err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Cat string `json:"cat"`
			Ph  string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	cats := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		cats[ev.Cat] = true
	}
	for _, want := range []string{"workflow", "task", "attempt", "container", "phase"} {
		if !cats[want] {
			t.Errorf("trace missing %q spans (cats: %v)", want, cats)
		}
	}

	prom, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE hiway_core_attempts_total counter",
		"hiway_yarn_containers_allocated_total",
		"hiway_yarn_allocation_latency_seconds_bucket",
		"hiway_sched_assignments_total",
		"hiway_sim_events_total",
	} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("metrics missing %q:\n%s", want, prom)
		}
	}

	dec, err := os.ReadFile(decisionsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dec), "dataaware") {
		t.Errorf("decision log missing policy name:\n%s", dec)
	}
}

func TestRunInspect(t *testing.T) {
	dir := t.TempDir()
	daxPath := filepath.Join(dir, "wf.dax")
	src := `<adag name="x">
  <job id="A" name="first" runtime="10"><uses file="in" link="input"/><uses file="mid" link="output" sizeMB="5"/></job>
  <job id="B" name="second" runtime="20"><uses file="mid" link="input"/><uses file="out" link="output"/></job>
</adag>`
	if err := os.WriteFile(daxPath, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runInspect([]string{"-w", daxPath}); err != nil {
		t.Fatal(err)
	}
	// Iterative languages cannot be inspected statically.
	cfPath := filepath.Join(dir, "wf.cf")
	os.WriteFile(cfPath, []byte(`deftask t( out : ~x ) in bash *{ true }*`+"\n"+`t( x: "1" );`), 0o644)
	if err := runInspect([]string{"-w", cfPath}); err == nil {
		t.Fatal("inspecting a Cuneiform workflow must fail")
	}
	if err := runInspect([]string{}); err == nil {
		t.Fatal("missing -w accepted")
	}
}

func TestRunSimGanttAndTimeline(t *testing.T) {
	dir := t.TempDir()
	wfPath := filepath.Join(dir, "demo.cf")
	src := `deftask upper( out : inp ) @cpu 2 in bash *{ x }*
upper( inp: "words.txt" );`
	if err := os.WriteFile(wfPath, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	timeline := filepath.Join(dir, "t.csv")
	err := runSim([]string{"-w", wfPath, "-input", "words.txt=5", "-gantt", "-timeline", timeline})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(timeline)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty timeline CSV")
	}
}

func TestRunLocalEndToEnd(t *testing.T) {
	dir := t.TempDir()
	wfPath := filepath.Join(dir, "demo.cf")
	src := `deftask hello( out : ~name ) in bash *{ echo "hi $name" > $out }*
hello( name: "world" );`
	if err := os.WriteFile(wfPath, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	work := filepath.Join(dir, "work")
	if err := runLocal([]string{"-w", wfPath, "-workdir", work}); err != nil {
		t.Fatal(err)
	}
	matches, _ := filepath.Glob(filepath.Join(work, "data", "demo", "hello_*", "out"))
	if len(matches) != 1 {
		t.Fatalf("output files = %v", matches)
	}
	data, _ := os.ReadFile(matches[0])
	if string(data) != "hi world\n" {
		t.Fatalf("output = %q", data)
	}
	if err := runLocal([]string{}); err == nil {
		t.Fatal("missing -w accepted")
	}
}

func TestRunProv(t *testing.T) {
	dir := t.TempDir()
	wfPath := filepath.Join(dir, "demo.cf")
	src := `deftask t( out : ~x ) @cpu 1 in bash *{ y }*
t( x: "1" );`
	if err := os.WriteFile(wfPath, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(dir, "run.jsonl")
	if err := runSim([]string{"-w", wfPath, "-prov", tracePath}); err != nil {
		t.Fatal(err)
	}
	if err := runProv([]string{"-trace", tracePath}); err != nil {
		t.Fatal(err)
	}
	// Error paths.
	if err := runProv([]string{}); err == nil {
		t.Fatal("missing source accepted")
	}
	if err := runProv([]string{"-trace", tracePath, "-db", "x"}); err == nil {
		t.Fatal("both sources accepted")
	}
	if err := runProv([]string{"-trace", filepath.Join(dir, "ghost.jsonl")}); err == nil {
		t.Fatal("missing trace accepted")
	}
	// provdb-backed path.
	dbPath := filepath.Join(dir, "prov.db")
	db, err := provdb.Open(dbPath)
	if err != nil {
		t.Fatal(err)
	}
	store := provenance.NewDBStore(db)
	store.Append(provenance.Event{Type: provenance.WorkflowStart, WorkflowID: "w", WorkflowName: "n"})
	store.Append(provenance.Event{Type: provenance.TaskEnd, WorkflowID: "w", Signature: "s", Node: "n1", DurationSec: 3})
	store.Append(provenance.Event{Type: provenance.WorkflowEnd, WorkflowID: "w", DurationSec: 4, Succeeded: true})
	store.Close()
	if err := runProv([]string{"-db", dbPath}); err != nil {
		t.Fatal(err)
	}
}

// TestSimShardDeterminism pins the parallel-shard contract end to end: for
// every scheduling policy, a multi-workflow `hiway sim` must produce
// byte-identical stdout, merged provenance trace, and metrics snapshot
// whether the shards run serially (-shard-workers 1) or on parallel workers.
// Each run gets a fresh process (see TestMain) so both start from the same
// task-ID space; output paths are normalized before comparison since the
// runs write to different directories.
func TestSimShardDeterminism(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	wfA := write("alpha.dax", `<adag name="alpha">
  <job id="A" name="prep" runtime="2"><uses file="a1" link="output" size="8"/></job>
  <job id="B" name="crunch" runtime="5"><uses file="a1" link="input"/><uses file="a2" link="output" size="4"/></job>
  <child ref="B"><parent ref="A"/></child>
</adag>`)
	wfB := write("beta.dax", `<adag name="beta">
  <job id="X" name="scan" runtime="3"><uses file="b1" link="output" size="6"/></job>
  <job id="Y" name="merge" runtime="4"><uses file="b1" link="input"/><uses file="b2" link="output" size="2"/></job>
  <child ref="Y"><parent ref="X"/></child>
</adag>`)
	policies := []string{
		scheduler.PolicyFCFS, scheduler.PolicyDataAware, scheduler.PolicyRoundRobin,
		scheduler.PolicyHEFT, scheduler.PolicyAdaptiveGreedy,
	}
	type run struct{ stdout, prov, metrics []byte }
	for _, pol := range policies {
		var runs []run
		for _, workers := range []string{"1", "4"} {
			sub := filepath.Join(dir, pol+"-w"+workers)
			if err := os.MkdirAll(sub, 0o755); err != nil {
				t.Fatal(err)
			}
			provPath := filepath.Join(sub, "run.jsonl")
			promPath := filepath.Join(sub, "run.prom")
			args := []string{
				"-w", wfA, "-w", wfB, "-shard-workers", workers,
				"-nodes", "4", "-policy", pol,
				"-prov", provPath, "-metrics", promPath,
			}
			cmd := exec.Command(os.Args[0])
			cmd.Env = append(os.Environ(), "HIWAY_SIM_HELPER="+strings.Join(args, "\x1f"))
			var stdout, stderr bytes.Buffer
			cmd.Stdout, cmd.Stderr = &stdout, &stderr
			if err := cmd.Run(); err != nil {
				t.Fatalf("policy %s workers %s: %v\n%s", pol, workers, err, stderr.String())
			}
			prov, err := os.ReadFile(provPath)
			if err != nil {
				t.Fatal(err)
			}
			metrics, err := os.ReadFile(promPath)
			if err != nil {
				t.Fatal(err)
			}
			out := bytes.ReplaceAll(stdout.Bytes(), []byte(sub), []byte("@OUT@"))
			runs = append(runs, run{stdout: out, prov: prov, metrics: metrics})
		}
		if !bytes.Equal(runs[0].stdout, runs[1].stdout) {
			t.Errorf("policy %s: stdout differs between serial and parallel shards:\n--- serial ---\n%s\n--- parallel ---\n%s",
				pol, runs[0].stdout, runs[1].stdout)
		}
		if !bytes.Equal(runs[0].prov, runs[1].prov) {
			t.Errorf("policy %s: merged provenance trace differs between serial and parallel shards", pol)
		}
		if !bytes.Equal(runs[0].metrics, runs[1].metrics) {
			t.Errorf("policy %s: metrics snapshot differs between serial and parallel shards", pol)
		}
		// Sanity: the merged trace holds both workflows, timestamp-ordered.
		evs, err := provenance.ParseTrace(string(runs[0].prov))
		if err != nil {
			t.Fatal(err)
		}
		wfs := map[string]bool{}
		last := -1.0
		for _, ev := range evs {
			wfs[ev.WorkflowName] = true
			if ev.Timestamp < last {
				t.Fatalf("policy %s: merged trace out of order (%f after %f)", pol, ev.Timestamp, last)
			}
			last = ev.Timestamp
		}
		if !wfs["alpha"] || !wfs["beta"] {
			t.Fatalf("policy %s: merged trace missing a workflow: %v", pol, wfs)
		}
	}
}
