// Command hiway is the client for submitting scientific workflows, the
// analogue of the paper's light-weight client program (§3.1). It executes a
// workflow written in any supported language (Cuneiform, Pegasus DAX,
// Galaxy, CWL, or a Hi-WAY provenance trace) either with real processes on
// the local machine or on a simulated YARN cluster.
//
// Usage:
//
//	hiway local -w wf.cf [-workdir DIR] [-workers N] [-bind name=path]
//	hiway sim   -w wf.cf [-w wf2.dax ...] [-shard-workers N]
//	            [-nodes N] [-policy fcfs|dataaware|roundrobin|heft|adaptive]
//	            [-input path=sizeMB ...] [-bind name=path] [-prov out.jsonl]
//	            [-trace out.json] [-metrics out.prom] [-decisions out.log]
//	            [-chaos SPEC] [-chaos-seed N] [-timeout-floor SEC] [-speculate]
//	            [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// -w is repeatable: each occurrence becomes an independent workflow shard
// simulated on its own cluster by a pool of -shard-workers goroutines
// (default GOMAXPROCS), with stdout, per-shard artifact files
// (out.json.shard00, ...), and the merged provenance stream all
// byte-identical to a serial -shard-workers=1 run.
//
// -trace writes a Chrome trace_event JSON timeline (open in chrome://tracing
// or Perfetto), -metrics a Prometheus text snapshot, -decisions the
// scheduler's per-decision log, and -prov the re-executable provenance
// trace. See OBSERVABILITY.md for the full span and metric taxonomy.
//
// The language is detected from the file extension (.cf/.cuneiform, .dax/
// .xml, .ga [Galaxy JSON], .cwl [CWL JSON], .jsonl/.trace) with a content
// sniff for unknown extensions, and can be forced with -lang.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hiway/internal/chaos"
	"hiway/internal/cluster"
	"hiway/internal/core"
	"hiway/internal/experiments"
	"hiway/internal/hdfs"
	"hiway/internal/lang"
	"hiway/internal/localexec"
	"hiway/internal/obs"
	"hiway/internal/provdb"
	"hiway/internal/provenance"
	"hiway/internal/recipes"
	"hiway/internal/scheduler"
	"hiway/internal/service"
	"hiway/internal/shard"
	"hiway/internal/sim"
	"hiway/internal/verify"
	"hiway/internal/wf"
	"hiway/internal/yarn"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "local":
		err = runLocal(os.Args[2:])
	case "sim":
		err = runSim(os.Args[2:])
	case "inspect":
		err = runInspect(os.Args[2:])
	case "prov":
		err = runProv(os.Args[2:])
	case "verify":
		err = runVerify(os.Args[2:])
	case "load":
		err = runLoad(os.Args[2:])
	case "elastic":
		err = runElastic(os.Args[2:])
	case "serve":
		err = runServe(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "hiway: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hiway:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `hiway — scientific workflow execution engine

  hiway local -w WORKFLOW [-workdir DIR] [-workers N] [-lang L] [-bind name=path ...]
      run the workflow with real processes on this machine

  hiway sim -w WORKFLOW [-w WORKFLOW ...] [-shard-workers N]
            [-nodes N] [-policy P] [-lang L]
            [-input path=sizeMB ...] [-bind name=path ...] [-prov FILE.jsonl]
            [-trace FILE.json] [-metrics FILE.prom] [-decisions FILE.log]
            [-trace-sample N] [-gantt] [-timeline FILE.csv]
            [-cpuprofile FILE] [-memprofile FILE]
      run the workflow(s) on a simulated YARN cluster; repeated -w flags
      become independent shards simulated in parallel with deterministic
      merged output

  hiway inspect -w WORKFLOW [-lang L] [-bind name=path ...]
      analyze a static workflow's structure without running it

  hiway prov (-trace FILE.jsonl | -db FILE.db) [-query Q]
      query a provenance store: workflow, task, and node summaries, or one
      targeted query with -query 'lineage PATH', 'diff RUN-A RUN-B', or
      'memo-hits [RUN]'

  hiway verify [-seeds N] [-start N] [-policy all|P,P,...] [-out FILE.json]
               [-repro FILE.json] [-no-shrink] [-portability] [-memo] [-v]
      property-based verification: run seeded random scenarios under every
      scheduling policy plus a kill/resume variant, auditing runtime
      invariants; a failing seed is minimized into a reproducer (TESTING.md);
      -portability forces the cross-language family so every seed is also
      round-tripped through the Cuneiform and CWL frontends; -memo forces
      the memoization family (cold/warm/kill-resume memo runs checked
      against the memo-off baseline)

  hiway load [-seed N] [-nodes N] [-duration SEC] [-rate X]
             [-max-concurrent N] [-max-queue N] [-retry-after SEC]
             [-retry-limit N] [-policy P] [-chaos SPEC] [-chaos-seed N]
             [-metrics FILE.prom] [-ladder] [-full] [-json FILE.json] [-memo]
      multi-tenant service load: an open-loop tenant mix submits workflows
      through admission control onto one simulated cluster; -ladder sweeps
      the arrival rate and emits the BENCH_service.json points; -memo shares
      one cross-tenant memo table so repeated pipelines splice their
      provenance-recorded outputs instead of re-executing

  hiway elastic [-seed N] [-duration SEC] [-rate X] [-autoscale P]
                [-static-nodes N] [-min-nodes N] [-max-nodes N]
                [-spot-rate R] [-spot-notice SEC] [-spot-every SEC]
                [-task-cpu SEC] [-max-concurrent N] [-max-queue N]
                [-metrics FILE.prom] [-ladder] [-full] [-json FILE.json]
      elastic cluster under churn: the service-tier tenant mix runs on a
      fleet sized by an autoscaling policy (static, reactive, predictive)
      with graceful node drains and optional spot-preemption chaos; -ladder
      sweeps the policy grid and emits the BENCH_elastic.json points

  hiway serve [-addr HOST:PORT] [-nodes N] [-policy P]
              [-max-concurrent N] [-max-queue N] [-retry-after SEC]
              [-retry-limit N] [-tenant SPEC ...] [-rate X]
              [-deterministic] [-seed N] [-duration SEC]
              [-prov FILE.jsonl] [-metrics FILE.prom] [-multiset FILE]
              [-drain-timeout SEC] [-memo]
      network service front-end: accept workflow submissions over HTTP
      (POST /v1/workflows), run each admitted workflow concurrently on its
      own simulated substrate, stream status and events, and drain
      gracefully on SIGINT/SIGTERM or POST /v1/drain; -deterministic
      replays the seeded tenant mix on a virtual clock through the same
      handlers instead of listening; -memo shares one cross-tenant memo
      table and exposes GET /v1/provenance for lineage, cross-run diff,
      and memo-hit attribution queries (SERVICE.md)

Supported languages: cuneiform (.cf), dax (.dax/.xml), galaxy (.ga), cwl (.cwl), trace (.jsonl)
Scheduling policies: fcfs, dataaware (default), roundrobin, heft, adaptive
`)
}

// multiFlag collects repeated -input / -bind flags.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// buildDriver reads the workflow file and parses it with the right
// frontend: the forced language if given, else the shared detector's
// verdict on the file name and content. It returns the resolved language
// alongside the driver so callers can name it in messages.
func buildDriver(path, forced string, binds map[string]string) (wf.Driver, string, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	language := forced
	if language == "" {
		language = lang.Detect(path, string(src))
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	driver, err := lang.NewDriver(language, name, string(src), binds)
	if err != nil {
		return nil, language, err
	}
	return driver, language, nil
}

func parseBinds(pairs []string) (map[string]string, error) {
	out := make(map[string]string, len(pairs))
	for _, p := range pairs {
		k, v, ok := strings.Cut(p, "=")
		if !ok {
			return nil, fmt.Errorf("bad -bind %q (want name=path)", p)
		}
		out[k] = v
	}
	return out, nil
}

func runLocal(args []string) error {
	fs := flag.NewFlagSet("local", flag.ExitOnError)
	wfPath := fs.String("w", "", "workflow file (required)")
	workdir := fs.String("workdir", "", "staging directory (default: temp dir)")
	workers := fs.Int("workers", 0, "parallel tasks (default: CPUs)")
	lang := fs.String("lang", "", "force workflow language")
	var binds multiFlag
	fs.Var(&binds, "bind", "bind a Galaxy input: name=path (repeatable)")
	fs.Parse(args)
	if *wfPath == "" {
		return fmt.Errorf("missing -w workflow file")
	}
	bindMap, err := parseBinds(binds)
	if err != nil {
		return err
	}
	driver, _, err := buildDriver(*wfPath, *lang, bindMap)
	if err != nil {
		return err
	}
	dir := *workdir
	if dir == "" {
		dir, err = os.MkdirTemp("", "hiway-local")
		if err != nil {
			return err
		}
	}
	rep, err := localexec.Run(driver, localexec.Config{WorkDir: dir, Workers: *workers})
	if err != nil {
		return err
	}
	fmt.Printf("workflow %s finished in %.2fs (%d tasks)\n", rep.WorkflowName, rep.MakespanSec, len(rep.Results))
	for _, out := range rep.Outputs {
		fmt.Println("output:", out)
	}
	return nil
}

// simShard is one workflow of a (possibly multi-workflow) sim invocation,
// with its own complete simulation substrate. All fields are assembled on
// the serial setup path; run() only touches shard-local state, so shards can
// execute on parallel workers while every observable output — the buffered
// stdout block, the provenance events, the metrics snapshot — stays
// byte-identical at any worker count.
type simShard struct {
	driver wf.Driver
	eng    *sim.Engine
	env    core.Env
	sched  scheduler.Scheduler
	cfg    core.Config
	o      *obs.Obs
	store  *provenance.MemStore // shard-local event buffer for the merged -prov file
	gantt  bool

	out    bytes.Buffer
	rep    *core.Report
	events []provenance.Event
}

func (s *simShard) run() error {
	am, err := core.Launch(s.env, s.driver, s.sched, s.cfg)
	if err != nil {
		return err
	}
	if s.o != nil && !am.Finished() {
		// Periodic counter samples on the virtual clock. The tick re-arms
		// only while the workflow runs, so it never keeps the engine alive.
		tr := s.o.T()
		var tick func()
		tick = func() {
			if am.Finished() {
				return
			}
			tr.Sample("sim", "event_queue_depth", float64(s.eng.Pending()))
			tr.Sample("yarn", "running_containers", float64(s.env.RM.RunningContainers()))
			tr.Sample("sched", "queued_tasks", float64(s.sched.Queued()))
			s.eng.Schedule(1, tick)
		}
		s.eng.Schedule(1, tick)
	}
	s.eng.Run()
	rep, err := am.Report()
	if err != nil {
		return err
	}
	if s.o != nil {
		s.env.Cluster.RecordMetrics(s.o.M())
	}
	fmt.Fprintln(&s.out, rep.Summary())
	for _, out := range rep.Outputs {
		fmt.Fprintln(&s.out, "output:", out)
	}
	if s.gantt {
		fmt.Fprint(&s.out, rep.Gantt(100))
	}
	s.rep = rep
	if s.store != nil {
		if err := s.env.Prov.Flush(); err != nil {
			return err
		}
		if s.events, err = s.store.Events(); err != nil {
			return err
		}
	}
	return nil
}

// shardFile derives the per-shard variant of an output path: the path itself
// for a single-workflow run, path.shardNN with multiple workflows.
func shardFile(path string, i, n int) string {
	if n == 1 {
		return path
	}
	return fmt.Sprintf("%s.shard%02d", path, i)
}

func runSim(args []string) error {
	fs := flag.NewFlagSet("sim", flag.ExitOnError)
	var wfPaths multiFlag
	fs.Var(&wfPaths, "w", "workflow file (repeatable: each extra -w runs as an independent shard)")
	shardWorkers := fs.Int("shard-workers", runtime.GOMAXPROCS(0), "goroutines simulating shards in parallel (outputs are identical at any value)")
	nodes := fs.Int("nodes", 8, "number of simulated worker nodes")
	policy := fs.String("policy", scheduler.PolicyDataAware, "scheduling policy")
	lang := fs.String("lang", "", "force workflow language")
	provPath := fs.String("prov", "", "write the provenance trace (re-executable) to this file")
	tracePath := fs.String("trace", "", "write a Chrome trace_event JSON timeline to this file")
	metricsPath := fs.String("metrics", "", "write a Prometheus text metrics snapshot to this file")
	decisionsPath := fs.String("decisions", "", "write the scheduler's per-decision log to this file")
	traceSample := fs.Int("trace-sample", 1, "keep every Nth counter sample in the trace")
	gantt := fs.Bool("gantt", false, "print a per-node text timeline after the run")
	timelinePath := fs.String("timeline", "", "write the per-task timeline CSV to this file")
	chaosSpec := fs.String("chaos", "", "chaos plan, e.g. 'crashrate=0.1;hang=bowtie2@0:1;kill=node-03@60'")
	chaosSeed := fs.Int64("chaos-seed", 1, "seed for chaos rate draws")
	timeoutFloor := fs.Float64("timeout-floor", 0, "attempt timeout floor in seconds (0 disables timeouts)")
	timeoutSlack := fs.Float64("timeout-slack", 3, "deadline = max(floor, p95 runtime x slack)")
	speculate := fs.Bool("speculate", false, "race timed-out attempts against a duplicate on another node")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the simulation to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile (taken after the run) to this file")
	var inputs, binds multiFlag
	fs.Var(&inputs, "input", "stage an input file: path=sizeMB (repeatable)")
	fs.Var(&binds, "bind", "bind a Galaxy input: name=path (repeatable)")
	fs.Parse(args)
	if len(wfPaths) == 0 {
		return fmt.Errorf("missing -w workflow file")
	}
	bindMap, err := parseBinds(binds)
	if err != nil {
		return err
	}

	// --- Serial setup phase. Everything that draws from process-global
	// state (workflow parsing and its task-ID allocation, workflow-ID
	// assignment) happens here, in -w flag order, so the shard workers
	// below start from identical state at any -shard-workers value.
	n := len(wfPaths)
	multi := n > 1
	var fstore *provenance.FileStore
	if *provPath != "" {
		if fstore, err = provenance.OpenFileStore(*provPath); err != nil {
			return err
		}
		defer fstore.Close()
	}
	shards := make([]*simShard, n)
	for i, wfPath := range wfPaths {
		driver, _, err := buildDriver(wfPath, *lang, bindMap)
		if err != nil {
			return err
		}
		r := &recipes.Recipe{
			Name:       "hiway-sim",
			Groups:     []recipes.NodeGroup{{Count: *nodes, Spec: cluster.M3Large()}},
			SwitchMBps: 2000,
			HDFS:       hdfs.Config{},
			YARN:       yarn.Config{},
			Seed:       1,
		}
		eng, env, err := r.Materialize()
		if err != nil {
			return err
		}
		s := &simShard{driver: driver, eng: eng, env: env, gantt: *gantt}
		// A single workflow streams provenance straight to the trace file;
		// multiple workflows buffer per shard and merge after the run.
		var store provenance.Store = provenance.NewMemStore()
		if fstore != nil && !multi {
			store = fstore
		} else if fstore != nil {
			s.store = store.(*provenance.MemStore)
		}
		if s.env.Prov, err = provenance.NewManager(store); err != nil {
			return err
		}
		// Observability is built only when an output asks for it, so the
		// default run keeps the nil-handle fast path everywhere.
		if *tracePath != "" || *metricsPath != "" || *decisionsPath != "" {
			s.o = obs.New(eng.Now)
			if *traceSample > 1 {
				s.o.T().SetSampleEvery(*traceSample)
			}
			s.env.Obs = s.o
			s.env.RM.SetObs(s.o)
			s.env.Prov.SetObs(s.o)
		}
		for _, in := range inputs {
			path, szStr, ok := strings.Cut(in, "=")
			if !ok {
				return fmt.Errorf("bad -input %q (want path=sizeMB)", in)
			}
			sz, err := strconv.ParseFloat(szStr, 64)
			if err != nil {
				return fmt.Errorf("bad -input size %q: %v", szStr, err)
			}
			if _, err := s.env.FS.Put(path, sz, ""); err != nil {
				return err
			}
		}
		if s.sched, err = scheduler.New(*policy, scheduler.Deps{Locality: s.env.FS, Estimator: s.env.Prov, Obs: s.o}); err != nil {
			return err
		}
		s.cfg = core.Config{
			TaskTimeoutFloorSec: *timeoutFloor,
			TimeoutSlack:        *timeoutSlack,
			Speculate:           *speculate,
		}
		if *chaosSpec != "" {
			plan, err := chaos.Parse(*chaosSpec, *chaosSeed)
			if err != nil {
				return err
			}
			plan.Arm(eng, s.env.RM, s.env.FS, s.env.Cluster)
			s.cfg.Chaos = plan
			// Under injected faults, track node health so repeatedly failing
			// nodes get blacklisted like they would in production.
			s.cfg.Health = scheduler.NewNodeHealthTracker(eng.Now, 3, 60)
			fmt.Fprintln(&s.out, "chaos:", plan)
		}
		// Parse now (consuming the global task-ID counter serially) and
		// pin the workflow ID core.Launch would otherwise derive inside
		// the worker.
		if s.driver, err = shard.PreParse(driver); err != nil {
			return err
		}
		// The shard index (not the global ID counter) keys the workflow
		// ID, so the same workflow at the same position gets the same ID
		// regardless of what parsed before it — renderings of one logical
		// workflow in different languages stay byte-comparable.
		s.cfg.WorkflowID = fmt.Sprintf("hiway-%s-%02d", driver.Name(), i)
		shards[i] = s
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	// --- Parallel phase: one engine per shard, nothing shared.
	if err := shard.Run(n, *shardWorkers, func(i int) error { return shards[i].run() }); err != nil {
		return err
	}

	// --- Deterministic output phase, in shard order throughout.
	for _, s := range shards {
		os.Stdout.Write(s.out.Bytes())
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		runtime.GC() // measure live objects, not garbage
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("heap profile:", *memProfile)
	}
	if *timelinePath != "" {
		for i, s := range shards {
			p := shardFile(*timelinePath, i, n)
			if err := os.WriteFile(p, []byte(s.rep.TimelineCSV()), 0o644); err != nil {
				return err
			}
			fmt.Println("timeline:", p)
		}
	}
	if *tracePath != "" {
		for i, s := range shards {
			p := shardFile(*tracePath, i, n)
			f, err := os.Create(p)
			if err != nil {
				return err
			}
			if err := s.o.T().WriteChrome(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Println("trace:", p)
		}
	}
	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			return err
		}
		for i, s := range shards {
			if multi {
				fmt.Fprintf(f, "# shard %02d: %s\n", i, s.driver.Name())
			}
			if err := s.o.M().WritePrometheus(f); err != nil {
				f.Close()
				return err
			}
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("metrics:", *metricsPath)
	}
	if *decisionsPath != "" {
		for i, s := range shards {
			p := shardFile(*decisionsPath, i, n)
			if err := os.WriteFile(p, []byte(s.o.D().Render()), 0o644); err != nil {
				return err
			}
			fmt.Println("decisions:", p)
		}
	}
	if *provPath != "" {
		if multi {
			// Merge the buffered per-shard streams into one file, ordered
			// by (timestamp, shard, shard-local position).
			perShard := make([][]provenance.Event, n)
			for i, s := range shards {
				perShard[i] = s.events
			}
			if err := fstore.AppendBatch(shard.MergeEvents(perShard)); err != nil {
				return err
			}
		}
		fmt.Println("provenance trace:", *provPath)
	}
	return nil
}

// runVerify drives the property-based scenario verifier: a batch of seeded
// random scenarios, each executed under the full scheduling-policy matrix
// plus a kill/resume variant, with runtime invariant auditing hooked into
// the RM and AM. The batch stops at the first failing seed, minimizes it,
// and emits a self-contained JSON reproducer that -repro re-checks.
func runVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	seeds := fs.Int64("seeds", 50, "number of consecutive seeds to check")
	start := fs.Int64("start", 1, "first seed of the batch")
	policy := fs.String("policy", "all", "policy matrix: 'all' or a comma-separated subset")
	reproPath := fs.String("repro", "", "re-check a reproducer scenario JSON instead of generating a batch")
	outPath := fs.String("out", "", "write the minimized failing reproducer JSON to this file")
	verbose := fs.Bool("v", false, "print every seed's per-policy outcome, not just failures")
	noShrink := fs.Bool("no-shrink", false, "report the first failing seed without minimizing it")
	portability := fs.Bool("portability", false, "force the cross-language portability family on every seed (and on -repro)")
	memoFamily := fs.Bool("memo", false, "force the memoization family on every seed (and on -repro)")
	fs.Parse(args)

	opts := verify.Options{}
	if *policy != "" && *policy != "all" {
		known := make(map[string]bool, len(verify.AllPolicies))
		for _, p := range verify.AllPolicies {
			known[p] = true
		}
		for _, p := range strings.Split(*policy, ",") {
			if !known[p] {
				return fmt.Errorf("unknown policy %q (have %s)", p, strings.Join(verify.AllPolicies, ", "))
			}
			opts.Policies = append(opts.Policies, p)
		}
	}

	report := func(sc *verify.Scenario, res *verify.Result) {
		fmt.Printf("seed %d (%s, %d tasks, %d nodes, chaos %q): FAIL\n",
			sc.Seed, sc.Shape, sc.TotalTasks(), sc.Nodes, sc.Chaos)
		for _, f := range res.Failures {
			fmt.Println("  ", f)
		}
	}

	if *reproPath != "" {
		data, err := os.ReadFile(*reproPath)
		if err != nil {
			return err
		}
		sc, err := verify.ParseScenario(data)
		if err != nil {
			return err
		}
		if *portability {
			sc.Portability = true
		}
		if *memoFamily {
			sc.Memo = true
		}
		res := verify.CheckScenario(sc, opts)
		if !res.OK() {
			report(sc, res)
			return fmt.Errorf("reproducer %s still fails (%d failures)", *reproPath, len(res.Failures))
		}
		fmt.Printf("reproducer %s passes: all invariants hold\n", *reproPath)
		return nil
	}

	for seed := *start; seed < *start+*seeds; seed++ {
		sc := verify.Generate(seed)
		if *portability {
			sc.Portability = true
		}
		if *memoFamily {
			sc.Memo = true
		}
		res := verify.CheckScenario(sc, opts)
		if res.OK() {
			if *verbose {
				for _, run := range res.Runs {
					fmt.Printf("seed %d (%s): %-10s ok  makespan %8.1fs  executed %d  recovered %d\n",
						seed, sc.Shape, run.Policy, run.MakespanSec, run.Executed, run.Recovered)
				}
			}
			continue
		}
		report(sc, res)
		repro := sc
		if !*noShrink {
			rep := verify.Shrink(sc, opts)
			repro = rep.Scenario
			fmt.Printf("minimized to %d tasks, chaos %q after %d probes\n",
				repro.TotalTasks(), repro.Chaos, rep.Probes)
		}
		if *outPath != "" {
			if err := os.WriteFile(*outPath, repro.Marshal(), 0o644); err != nil {
				return err
			}
			fmt.Println("reproducer:", *outPath)
			// A portability failure gets a two-file reproducer alongside the
			// JSON: the same workflow in both source languages, runnable
			// directly with `hiway sim`/`hiway local`.
			if repro.Portability {
				for _, r := range []struct {
					ext    string
					render func(*verify.Scenario) (string, error)
				}{
					{".cf", verify.RenderCuneiform}, {".cwl", verify.RenderCWL},
				} {
					ext, render := r.ext, r.render
					src, rerr := render(repro)
					if rerr != nil {
						fmt.Printf("rendering %s: %v\n", ext, rerr)
						continue
					}
					if err := os.WriteFile(*outPath+ext, []byte(src), 0o644); err != nil {
						return err
					}
					fmt.Println("reproducer workflow:", *outPath+ext)
				}
			}
		} else {
			fmt.Printf("reproducer (re-check with `hiway verify -repro FILE`):\n%s", repro.Marshal())
		}
		return fmt.Errorf("seed %d violated invariants", seed)
	}
	n := len(opts.Policies)
	if n == 0 {
		n = len(verify.AllPolicies)
	}
	fmt.Printf("verified %d seeds x %d policies (+resume variant): all invariants hold\n", *seeds, n)
	return nil
}

// runLoad drives the multi-tenant service tier: an open-loop arrival
// process (the default tenant mix, scaled by -rate) submits workflow
// instances through admission control onto one simulated cluster, and the
// per-workflow accounting is printed when the run drains. Same-seed runs
// print byte-identical reports. With -ladder the arrival rate is swept and
// the measured points are emitted as BENCH_service.json.
func runElastic(args []string) error {
	fs := flag.NewFlagSet("elastic", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "seed for arrivals, autoscaling draws, and the simulated substrate")
	duration := fs.Float64("duration", 1800, "arrival window in simulated seconds")
	rate := fs.Float64("rate", 1, "arrival-rate multiplier over the base tenant mix")
	autoscale := fs.String("autoscale", "static", "fleet sizing policy: static, reactive, or predictive")
	staticNodes := fs.Int("static-nodes", 10, "fixed fleet size for the static policy")
	minNodes := fs.Int("min-nodes", 2, "elastic fleet floor (and starting size)")
	maxNodes := fs.Int("max-nodes", 12, "elastic fleet ceiling")
	spotRate := fs.Float64("spot-rate", 0, "per-check spot reclaim probability per spot node (0 disables chaos)")
	spotNotice := fs.Float64("spot-notice", 120, "seconds between spot preemption notice and reclaim")
	spotEvery := fs.Float64("spot-every", 60, "seconds between spot market checks")
	taskCPU := fs.Float64("task-cpu", 180, "CPU seconds per workflow task")
	maxConcurrent := fs.Int("max-concurrent", 4, "admission cap: concurrently running AMs")
	maxQueue := fs.Int("max-queue", 16, "backpressure threshold: queued workflows before rejection")
	metricsPath := fs.String("metrics", "", "write a Prometheus text metrics snapshot to this file")
	ladder := fs.Bool("ladder", false, "sweep the policy x chaos grid instead of a single run")
	full := fs.Bool("full", false, "with -ladder: run the full-length arrival window")
	jsonPath := fs.String("json", "", "with -ladder: write the ladder points JSON to this file")
	fs.Parse(args)

	cfg := experiments.ElasticLoadConfig{
		Seed:           *seed,
		DurationSec:    *duration,
		RateX:          *rate,
		Autoscale:      *autoscale,
		StaticNodes:    *staticNodes,
		MinNodes:       *minNodes,
		MaxNodes:       *maxNodes,
		SpotRate:       *spotRate,
		SpotNoticeSec:  *spotNotice,
		SpotEverySec:   *spotEvery,
		TaskCPUSeconds: *taskCPU,
		MaxConcurrent:  *maxConcurrent,
		MaxQueue:       *maxQueue,
	}

	if *ladder {
		cfgs := experiments.ElasticSweepConfigs(*full)
		for i := range cfgs {
			pol, spot, dur := cfgs[i].Autoscale, cfgs[i].SpotRate, cfgs[i].DurationSec
			cfgs[i] = cfg
			cfgs[i].Autoscale = pol
			cfgs[i].SpotRate = spot
			cfgs[i].DurationSec = dur
		}
		res, err := experiments.ElasticSweep(cfgs)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		if *jsonPath != "" {
			if err := os.WriteFile(*jsonPath, res.JSON(), 0o644); err != nil {
				return err
			}
			fmt.Println("ladder:", *jsonPath)
		}
		return nil
	}

	cfg.WithObs = *metricsPath != ""
	run, err := experiments.ElasticLoad(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("elastic load: seed %d, %s autoscaling, %.0fs window, rate x%g\n",
		cfg.Seed, cfg.Autoscale, cfg.DurationSec, cfg.RateX)
	if cfg.SpotRate > 0 {
		fmt.Printf("spot chaos: rate %g, notice %.0fs, every %.0fs\n",
			cfg.SpotRate, cfg.SpotNoticeSec, cfg.SpotEverySec)
	}
	fmt.Print(run.Render())
	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			return err
		}
		if err := run.Obs.M().WritePrometheus(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("metrics:", *metricsPath)
	}
	return nil
}

func runLoad(args []string) error {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "seed for arrivals and the simulated substrate")
	nodes := fs.Int("nodes", 8, "number of simulated worker nodes")
	duration := fs.Float64("duration", 1800, "arrival window in simulated seconds")
	rate := fs.Float64("rate", 1, "arrival-rate multiplier over the base tenant mix")
	maxConcurrent := fs.Int("max-concurrent", 4, "admission cap: concurrently running AMs")
	maxQueue := fs.Int("max-queue", 16, "backpressure threshold: queued workflows before rejection")
	retryAfter := fs.Float64("retry-after", 30, "client retry delay after a rejection, in seconds")
	retryLimit := fs.Int("retry-limit", 1, "client retries after rejection before dropping")
	policy := fs.String("policy", scheduler.PolicyFCFS, "per-workflow scheduling policy")
	chaosSpec := fs.String("chaos", "", "chaos plan, e.g. 'crashrate=0.1;kill=node-03@60'")
	chaosSeed := fs.Int64("chaos-seed", 1, "seed for chaos rate draws")
	metricsPath := fs.String("metrics", "", "write a Prometheus text metrics snapshot to this file")
	ladder := fs.Bool("ladder", false, "sweep the arrival-rate ladder instead of a single run")
	full := fs.Bool("full", false, "with -ladder: include the overload rungs (x2, x4)")
	jsonPath := fs.String("json", "", "with -ladder: write the ladder points JSON to this file")
	memoOn := fs.Bool("memo", false, "share a cluster-wide memo table across tenants: repeated tasks splice instead of executing")
	fs.Parse(args)

	cfg := experiments.ServiceLoadConfig{
		Seed:          *seed,
		Nodes:         *nodes,
		DurationSec:   *duration,
		RateX:         *rate,
		MaxConcurrent: *maxConcurrent,
		MaxQueue:      *maxQueue,
		RetryAfterSec: *retryAfter,
		RetryLimit:    *retryLimit,
		Policy:        *policy,
		ChaosSpec:     *chaosSpec,
		ChaosSeed:     *chaosSeed,
		Memo:          *memoOn,
	}

	if *ladder {
		cfgs := experiments.ServiceSweepConfigs(*full)
		for i := range cfgs {
			rx := cfgs[i].RateX
			cfgs[i] = cfg
			cfgs[i].RateX = rx
		}
		res, err := experiments.ServiceSweep(cfgs)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		if *jsonPath != "" {
			if err := os.WriteFile(*jsonPath, res.JSON(), 0o644); err != nil {
				return err
			}
			fmt.Println("ladder:", *jsonPath)
		}
		return nil
	}

	cfg.WithObs = *metricsPath != ""
	run, err := experiments.ServiceLoad(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("service load: seed %d, %d nodes, %.0fs window, rate x%g, policy %s\n",
		cfg.Seed, cfg.Nodes, cfg.DurationSec, cfg.RateX, cfg.Policy)
	if cfg.ChaosSpec != "" {
		fmt.Println("chaos:", cfg.ChaosSpec)
	}
	if cfg.Memo {
		fmt.Println("memo: cross-tenant table enabled")
	}
	fmt.Print(run.Render())
	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			return err
		}
		if err := run.Obs.M().WritePrometheus(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("metrics:", *metricsPath)
	}
	return nil
}

// parseTenantProfiles decodes repeated -tenant flags of the form
// name[,weight=N][,containers=N][,inflight=N][,rate=R][,burst=N][,memo=off].
func parseTenantProfiles(specs []string) ([]service.TenantProfile, error) {
	out := make([]service.TenantProfile, 0, len(specs))
	for _, spec := range specs {
		parts := strings.Split(spec, ",")
		if parts[0] == "" {
			return nil, fmt.Errorf("bad -tenant %q: empty name", spec)
		}
		p := service.TenantProfile{Name: parts[0]}
		for _, kv := range parts[1:] {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("bad -tenant field %q (want key=value)", kv)
			}
			var err error
			switch k {
			case "weight":
				p.Weight, err = strconv.Atoi(v)
			case "containers":
				p.MaxContainers, err = strconv.Atoi(v)
			case "inflight":
				p.MaxInFlight, err = strconv.Atoi(v)
			case "rate":
				p.RatePerSec, err = strconv.ParseFloat(v, 64)
			case "burst":
				p.Burst, err = strconv.Atoi(v)
			case "memo":
				switch v {
				case "off":
					p.MemoOptOut = true
				case "on":
					p.MemoOptOut = false
				default:
					err = fmt.Errorf("want on or off")
				}
			default:
				return nil, fmt.Errorf("bad -tenant field %q (want weight, containers, inflight, rate, burst, or memo)", k)
			}
			if err != nil {
				return nil, fmt.Errorf("bad -tenant field %q: %v", kv, err)
			}
		}
		out = append(out, p)
	}
	return out, nil
}

// runServe starts the network service front-end (or its deterministic
// virtual-clock replay) and handles graceful drain on SIGINT/SIGTERM or
// POST /v1/drain: admission stops, in-flight runs finish, provenance is
// merged and flushed, then the process exits.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	nodes := fs.Int("nodes", 8, "simulated worker nodes per run")
	policy := fs.String("policy", scheduler.PolicyFCFS, "default per-workflow scheduling policy")
	maxConcurrent := fs.Int("max-concurrent", 8, "admission cap: concurrently running AM goroutines")
	maxQueue := fs.Int("max-queue", 64, "backpressure threshold: queued runs before 429")
	retryAfter := fs.Float64("retry-after", 5, "Retry-After hint on 429 responses, in seconds")
	retryLimit := fs.Int("retry-limit", 1, "deterministic mode: client retries after rejection before dropping")
	var tenants multiFlag
	fs.Var(&tenants, "tenant", "tenant profile 'name[,weight=N][,containers=N][,inflight=N][,rate=R][,burst=N][,memo=off]' (repeatable; default: built-in mix)")
	rate := fs.Float64("rate", 1, "rate multiplier over the built-in tenant mix (when no -tenant is given)")
	det := fs.Bool("deterministic", false, "seeded virtual-clock replay through the same handlers instead of listening")
	seed := fs.Int64("seed", 1, "deterministic mode: arrival seed")
	duration := fs.Float64("duration", 600, "deterministic mode: arrival window in virtual seconds")
	provPath := fs.String("prov", "", "flush the merged provenance trace to this JSONL file at drain")
	metricsPath := fs.String("metrics", "", "write a Prometheus metrics snapshot to this file at drain")
	multisetPath := fs.String("multiset", "", "write the completed-task multiset to this file at drain")
	drainTimeout := fs.Float64("drain-timeout", 120, "seconds to wait for in-flight runs at shutdown before exiting anyway")
	memoOn := fs.Bool("memo", false, "share a cluster-wide memo table across tenants: repeated submissions splice instead of executing")
	fs.Parse(args)

	profiles := experiments.ServiceTenantMix(*rate)
	if len(tenants) > 0 {
		var err error
		profiles, err = parseTenantProfiles(tenants)
		if err != nil {
			return err
		}
	}
	srv, err := service.NewServer(service.ServerConfig{
		Nodes:         *nodes,
		Policy:        *policy,
		MaxConcurrent: *maxConcurrent,
		MaxQueue:      *maxQueue,
		RetryAfterSec: *retryAfter,
		RetryLimit:    *retryLimit,
		Deterministic: *det,
		Memo:          *memoOn,
	}, profiles)
	if err != nil {
		return err
	}

	drained := true
	if *det {
		fmt.Printf("serve: deterministic replay, seed %d, %.0fs window, %d tenants, policy %s\n",
			*seed, *duration, len(profiles), *policy)
		if err := srv.RunDeterministic(*seed, *duration); err != nil {
			return err
		}
		srv.StartDrain() // already idle: records the drain for the artifacts below
	} else {
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: srv.Handler()}
		serveErr := make(chan error, 1)
		go func() { serveErr <- hs.Serve(ln) }()
		fmt.Printf("serve: listening on http://%s (%d tenants, policy %s)\n", ln.Addr(), len(profiles), *policy)

		sigCh := make(chan os.Signal, 1)
		signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sigCh)
		select {
		case err := <-serveErr:
			return err
		case s := <-sigCh:
			fmt.Fprintf(os.Stderr, "serve: %v: draining\n", s)
			srv.StartDrain()
		case <-srv.Drained():
			// drained via POST /v1/drain
		}
		select {
		case <-srv.Drained():
		case <-time.After(time.Duration(*drainTimeout * float64(time.Second))):
			drained = false
			fmt.Fprintln(os.Stderr, "serve: drain timeout; exiting with runs in flight")
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = hs.Shutdown(ctx)
		cancel()
	}
	if drained {
		srv.Wait()
	}

	st := srv.Stats()
	fmt.Printf("serve: submitted %d  accepted %d  rejected %d  dropped %d  completed %d  failed %d  peak-running %d\n",
		st.Submitted, st.Accepted, st.Rejected, st.Dropped, st.Completed, st.Failed, st.PeakRunning)
	if *provPath != "" {
		store, err := provenance.OpenFileStore(*provPath)
		if err != nil {
			return err
		}
		n, err := srv.FlushProvenance(store)
		if err != nil {
			store.Close()
			return err
		}
		if err := store.Close(); err != nil {
			return err
		}
		fmt.Printf("prov: %s (%d events)\n", *provPath, n)
	}
	if *metricsPath != "" {
		var buf bytes.Buffer
		if err := srv.Obs().M().WritePrometheus(&buf); err != nil {
			return err
		}
		if err := os.WriteFile(*metricsPath, buf.Bytes(), 0o644); err != nil {
			return err
		}
		fmt.Println("metrics:", *metricsPath)
	}
	if *multisetPath != "" {
		if err := os.WriteFile(*multisetPath, srv.Multiset(), 0o644); err != nil {
			return err
		}
		fmt.Println("multiset:", *multisetPath)
	}
	return nil
}

// runProv prints summaries over a provenance store — the manual-query
// capability §3.5 attributes to database-backed provenance.
func runProv(args []string) error {
	fs := flag.NewFlagSet("prov", flag.ExitOnError)
	tracePath := fs.String("trace", "", "JSONL trace file")
	dbPath := fs.String("db", "", "provdb database file")
	query := fs.String("query", "", "run one query instead of the summaries: 'lineage PATH', 'diff RUN-A RUN-B', or 'memo-hits [RUN]'")
	fs.Parse(args)
	var store provenance.Store
	switch {
	case *tracePath != "" && *dbPath != "":
		return fmt.Errorf("choose one of -trace or -db")
	case *tracePath != "":
		data, err := os.ReadFile(*tracePath)
		if err != nil {
			return err
		}
		events, err := provenance.ParseTrace(string(data))
		if err != nil {
			return err
		}
		mem := provenance.NewMemStore()
		for _, ev := range events {
			if err := mem.Append(ev); err != nil {
				return err
			}
		}
		store = mem
	case *dbPath != "":
		db, err := provdb.Open(*dbPath)
		if err != nil {
			return err
		}
		defer db.Close()
		store = provenance.NewDBStore(db)
	default:
		return fmt.Errorf("missing -trace or -db")
	}

	if *query != "" {
		q, err := provenance.ParseQuery(*query)
		if err != nil {
			return err
		}
		out, err := provenance.RunQuery(store, q)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}

	wfs, err := provenance.SummarizeWorkflows(store)
	if err != nil {
		return err
	}
	fmt.Printf("workflow runs (%d):\n", len(wfs))
	for _, w := range wfs {
		status := "ok"
		if !w.Succeeded {
			status = "FAILED"
		}
		fmt.Printf("  %-40s %-16s %4d tasks  %8.1fs  %s\n", w.WorkflowID, w.WorkflowName, w.Tasks, w.MakespanSec, status)
	}
	tasks, err := provenance.SummarizeTasks(store)
	if err != nil {
		return err
	}
	fmt.Printf("\ntask signatures:\n%s", provenance.RenderTaskSummaries(tasks))
	nodes, err := provenance.SummarizeNodes(store)
	if err != nil {
		return err
	}
	fmt.Printf("\nnode usage:\n")
	for _, n := range nodes {
		fmt.Printf("  %-12s %4d tasks  busy %9.1fs  mean %7.1fs  failures %d\n",
			n.Node, n.Tasks, n.BusySec, n.MeanSec, n.Failures)
	}
	return nil
}

// runInspect analyzes a static workflow without executing it.
func runInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	wfPath := fs.String("w", "", "workflow file (required)")
	lang := fs.String("lang", "", "force workflow language")
	var binds multiFlag
	fs.Var(&binds, "bind", "bind a Galaxy input: name=path (repeatable)")
	fs.Parse(args)
	if *wfPath == "" {
		return fmt.Errorf("missing -w workflow file")
	}
	bindMap, err := parseBinds(binds)
	if err != nil {
		return err
	}
	driver, language, err := buildDriver(*wfPath, *lang, bindMap)
	if err != nil {
		return err
	}
	static, ok := driver.(wf.StaticDriver)
	if !ok {
		return fmt.Errorf("inspect needs a static workflow language; %s workflows unfold at run time (§3.3)",
			language)
	}
	if _, err := static.Parse(); err != nil {
		return err
	}
	fmt.Printf("workflow %s\n", static.Name())
	fmt.Print(wf.Analyze(static.Graph()).Render())
	return nil
}
