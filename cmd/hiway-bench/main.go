// Command hiway-bench regenerates the tables and figures of the paper's
// evaluation section (§4) on the simulated substrate and prints them as
// text tables.
//
// Usage:
//
//	hiway-bench [-exp table1|fig4|table2|fig5|fig6|fig8|fig9|all] [-quick]
//
// -quick shrinks repetition counts so the full set finishes in seconds;
// without it the experiments run at the paper's sizes (e.g. Fig. 9's 80
// repetitions of 21 workflow executions).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hiway/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: table1, fig4, table2, fig5, fig6, fig8, fig9, all")
	quick := flag.Bool("quick", false, "run reduced repetition counts")
	flag.Parse()

	selected := strings.ToLower(*exp)
	want := func(name string) bool { return selected == "all" || selected == name }
	ran := false

	if want("table1") {
		ran = true
		fmt.Println(experiments.RenderTable1())
		fmt.Println()
	}
	if want("fig4") {
		ran = true
		opt := experiments.Fig4Options{}
		if *quick {
			opt.Runs = 1
		}
		res, err := experiments.Fig4(opt)
		exitOn(err)
		fmt.Println(res.Render())
		fmt.Println()
	}
	if want("table2") || want("fig5") || want("fig6") {
		ran = true
		opt := experiments.Table2Options{}
		if *quick {
			opt.Runs = 1
			opt.Workers = []int{1, 2, 4, 8, 16, 32, 64, 128}
		}
		res, err := experiments.Table2(opt)
		exitOn(err)
		if want("table2") || want("fig5") {
			fmt.Println(res.Render())
			fmt.Println()
		}
		if want("fig6") {
			fmt.Println(res.RenderFig6())
			fmt.Println()
		}
	}
	if want("fig8") {
		ran = true
		opt := experiments.Fig8Options{}
		if *quick {
			opt.Runs = 2
		}
		res, err := experiments.Fig8(opt)
		exitOn(err)
		fmt.Println(res.Render())
		fmt.Println()
	}
	if want("fig9") {
		ran = true
		opt := experiments.Fig9Options{}
		if *quick {
			opt.Reps = 10
		}
		res, err := experiments.Fig9(opt)
		exitOn(err)
		fmt.Println(res.Render())
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hiway-bench:", err)
		os.Exit(1)
	}
}
