package hiway_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"hiway/internal/service"
)

// fencedBlocks returns the fenced code blocks of a markdown file as
// (language, body) pairs, failing the test on an unbalanced fence.
func fencedBlocks(t *testing.T, path string) [][2]string {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var blocks [][2]string
	var lang string
	var body []string
	open := false
	for i, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, "```") {
			if open {
				blocks = append(blocks, [2]string{lang, strings.Join(body, "\n")})
				open, body = false, nil
			} else {
				open = true
				lang = strings.TrimPrefix(line, "```")
			}
			continue
		}
		if open {
			body = append(body, line)
		}
		_ = i
	}
	if open {
		t.Fatalf("%s: unclosed ``` fence", path)
	}
	return blocks
}

var docFiles = []string{"README.md", "OBSERVABILITY.md", "DESIGN.md", "EXPERIMENTS.md", "TESTING.md", "SERVICE.md"}

// TestMarkdownFencesBalanced guards against a truncated or mis-edited doc:
// every fenced block in the operator-facing markdown must close.
func TestMarkdownFencesBalanced(t *testing.T) {
	for _, f := range docFiles {
		fencedBlocks(t, f)
	}
}

// TestMarkdownGoSnippetsParse parses every ```go fenced snippet in the
// operator docs with go/parser — as a full file, or wrapped in a stub
// package and function body for fragments.
func TestMarkdownGoSnippetsParse(t *testing.T) {
	for _, f := range docFiles {
		for i, b := range fencedBlocks(t, f) {
			if b[0] != "go" {
				continue
			}
			src := b[1]
			fset := token.NewFileSet()
			if _, err := parser.ParseFile(fset, "snippet.go", src, 0); err == nil {
				continue
			}
			wrapped := "package p\nfunc _() {\n" + src + "\n}\n"
			if _, err := parser.ParseFile(fset, "snippet.go", wrapped, 0); err != nil {
				t.Errorf("%s: go snippet %d does not parse: %v\n%s", f, i, err, src)
			}
		}
	}
}

// cliFlags parses cmd/hiway/main.go and returns the flag names each run*
// function registers, keyed by subcommand (runSim → "sim", …). Parsing the
// real source keeps the docs check honest: a flag renamed in the CLI fails
// the docs test until the docs follow.
func cliFlags(t *testing.T) map[string]map[string]bool {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, filepath.Join("cmd", "hiway", "main.go"), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	subFor := map[string]string{"runSim": "sim", "runLocal": "local", "runProv": "prov", "runInspect": "inspect", "runVerify": "verify", "runLoad": "load", "runElastic": "elastic", "runServe": "serve"}
	out := map[string]map[string]bool{}
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		sub, ok := subFor[fn.Name.Name]
		if !ok {
			continue
		}
		flags := map[string]bool{}
		ast.Inspect(fn, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			var nameArg ast.Expr
			switch sel.Sel.Name {
			case "String", "Bool", "Int", "Int64", "Float64":
				if len(call.Args) >= 1 {
					nameArg = call.Args[0]
				}
			case "Var":
				if len(call.Args) >= 2 {
					nameArg = call.Args[1]
				}
			}
			if lit, ok := nameArg.(*ast.BasicLit); ok && lit.Kind == token.STRING {
				flags[strings.Trim(lit.Value, `"`)] = true
			}
			return true
		})
		out[sub] = flags
	}
	for fn, sub := range subFor {
		if len(out[sub]) == 0 {
			t.Fatalf("found no flag registrations in %s", fn)
		}
	}
	return out
}

var flagToken = regexp.MustCompile(`^-([a-z][a-z0-9-]*)`)

// TestDocumentedCommandsUseRealFlags joins continuation lines of every
// `hiway <subcommand>` invocation inside a fenced block of the operator
// docs and checks each -flag token against the flags the CLI actually
// registers, so a removed or renamed flag fails the docs until they follow.
func TestDocumentedCommandsUseRealFlags(t *testing.T) {
	flags := cliFlags(t)
	for _, f := range docFiles {
		for _, b := range fencedBlocks(t, f) {
			// Join backslash continuations into single command lines.
			joined := strings.ReplaceAll(b[1], "\\\n", " ")
			for _, line := range strings.Split(joined, "\n") {
				fields := strings.Fields(line)
				sub := ""
				for i, tok := range fields {
					if (tok == "hiway" || strings.HasSuffix(tok, "/hiway")) && i+1 < len(fields) {
						sub = fields[i+1]
						fields = fields[i+2:]
						break
					}
				}
				if _, known := flags[sub]; !known {
					continue
				}
				for _, tok := range fields {
					m := flagToken.FindStringSubmatch(tok)
					if m == nil {
						continue
					}
					if !flags[sub][m[1]] {
						t.Errorf("%s: documented command uses unknown `hiway %s` flag -%s:\n  %s",
							f, sub, m[1], strings.TrimSpace(line))
					}
				}
			}
		}
	}
}

// TestFlagTablesUseRealFlags validates the flag reference tables: every
// backticked token that looks like a flag in README.md, OBSERVABILITY.md,
// or SERVICE.md must be registered by some hiway subcommand.
func TestFlagTablesUseRealFlags(t *testing.T) {
	flags := cliFlags(t)
	union := map[string]bool{}
	for _, set := range flags {
		for name := range set {
			union[name] = true
		}
	}
	ticked := regexp.MustCompile("`(-[a-z][a-z0-9-]*)[^`]*`")
	for _, f := range []string{"README.md", "OBSERVABILITY.md", "SERVICE.md"} {
		raw, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range ticked.FindAllStringSubmatch(string(raw), -1) {
			if !union[strings.TrimPrefix(m[1], "-")] {
				t.Errorf("%s: references flag %s, which no hiway subcommand registers", f, m[1])
			}
		}
	}
}

// assertExportedIdentifiersDocumented enforces godoc coverage on one
// internal package: every exported top-level declaration (and every
// exported method) must carry a doc comment.
func assertExportedIdentifiersDocumented(t *testing.T, pkgName string) {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, filepath.Join("internal", pkgName), func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs[pkgName]
	if !ok {
		t.Fatalf("package %s not found (got %v)", pkgName, pkgs)
	}
	undocumented := func(pos token.Pos, what string) {
		t.Errorf("internal/%s: %s at %s has no doc comment", pkgName, what, fset.Position(pos))
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if d.Doc.Text() == "" {
					undocumented(d.Pos(), fmt.Sprintf("func %s", d.Name.Name))
				}
			case *ast.GenDecl:
				groupDoc := d.Doc.Text()
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && groupDoc == "" && s.Doc.Text() == "" {
							undocumented(s.Pos(), fmt.Sprintf("type %s", s.Name.Name))
						}
					case *ast.ValueSpec:
						for _, name := range s.Names {
							if name.IsExported() && groupDoc == "" && s.Doc.Text() == "" && s.Comment.Text() == "" {
								undocumented(name.Pos(), fmt.Sprintf("value %s", name.Name))
							}
						}
					}
				}
			}
		}
	}
}

// TestObsExportedIdentifiersDocumented enforces godoc coverage on the
// observability package.
func TestObsExportedIdentifiersDocumented(t *testing.T) {
	assertExportedIdentifiersDocumented(t, "obs")
}

// TestServiceExportedIdentifiersDocumented enforces godoc coverage on the
// service tier, whose exported surface (Server, Routes, request/response
// types) is the HTTP API contract SERVICE.md documents.
func TestServiceExportedIdentifiersDocumented(t *testing.T) {
	assertExportedIdentifiersDocumented(t, "service")
}

// routeRow matches one endpoint-table row of SERVICE.md,
// e.g. "| `POST` | `/v1/workflows` | submit … |".
var routeRow = regexp.MustCompile("^\\|\\s*`(GET|POST|PUT|DELETE|PATCH)`\\s*\\|\\s*`([^`]+)`\\s*\\|")

// TestServiceRoutesDocumented cross-checks SERVICE.md's endpoint reference
// against service.Routes(), the table the HTTP mux is built from: every
// registered route must be documented, and every documented route must be
// registered — method and pattern both.
func TestServiceRoutesDocumented(t *testing.T) {
	raw, err := os.ReadFile("SERVICE.md")
	if err != nil {
		t.Fatal(err)
	}
	documented := map[string]bool{}
	for _, line := range strings.Split(string(raw), "\n") {
		if m := routeRow.FindStringSubmatch(line); m != nil {
			documented[m[1]+" "+m[2]] = true
		}
	}
	for _, rt := range service.Routes() {
		key := rt.Method + " " + rt.Pattern
		if !documented[key] {
			t.Errorf("SERVICE.md: registered route %q is not in the endpoint reference", key)
		}
		delete(documented, key)
	}
	for key := range documented {
		t.Errorf("SERVICE.md: documents route %q, which the server does not register", key)
	}
}

// TestDocsCIJobRunsAllDocsTests keeps the CI docs job honest: the -run
// pattern it passes to go test must select every Test function defined in
// this file, so adding a docs test without wiring it into CI fails here.
func TestDocsCIJobRunsAllDocsTests(t *testing.T) {
	ci, err := os.ReadFile(filepath.Join(".github", "workflows", "ci.yml"))
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`go test -run '([^']+)' -v \.`).FindStringSubmatch(string(ci))
	if m == nil {
		t.Fatal("ci.yml: docs job's `go test -run '…' -v .` invocation not found")
	}
	pattern, err := regexp.Compile(m[1])
	if err != nil {
		t.Fatalf("ci.yml: docs job -run pattern does not compile: %v", err)
	}
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "docs_test.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || !strings.HasPrefix(fn.Name.Name, "Test") {
			continue
		}
		if !pattern.MatchString(fn.Name.Name) {
			t.Errorf("ci.yml: docs job -run pattern %q does not select %s", m[1], fn.Name.Name)
		}
	}
}
