// Package hiway's top-level benchmarks regenerate each table and figure of
// the paper's evaluation (§4). One benchmark iteration executes the whole
// experiment at reduced repetition counts; run cmd/hiway-bench for the
// full-size versions and the rendered tables.
package hiway_test

import (
	"os"
	"testing"

	"hiway/internal/experiments"
)

// BenchmarkTable1 renders the experiment overview (trivially cheap; kept so
// every table has a bench target).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.RenderTable1(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig4 regenerates Fig. 4: SNV calling, Hi-WAY vs Tez, 72–576
// containers on the 24-node cluster.
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(experiments.Fig4Options{Runs: 1})
		if err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(last.HiWayMin, "hiway-576c-min")
		b.ReportMetric(last.TezMin, "tez-576c-min")
	}
}

// BenchmarkTable2Fig5 regenerates Table 2 / Fig. 5: weak scaling from 1 to
// 128 workers with the data volume doubling alongside.
func BenchmarkTable2Fig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(experiments.Table2Options{Runs: 1})
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.AvgMin, "runtime-128w-min")
		b.ReportMetric(last.CostPerGB, "cost-per-GB-usd")
	}
}

// BenchmarkFig6 regenerates Fig. 6: master/worker resource utilization
// while scaling out.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(experiments.Table2Options{Runs: 1, Workers: []int{1, 16, 128}})
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1].Util
		b.ReportMetric(last.HadoopCPULoad, "hadoop-cpu-load")
		b.ReportMetric(last.WorkerCPULoad, "worker-cpu-load")
	}
}

// BenchmarkFig8 regenerates Fig. 8: TRAPLINE on Hi-WAY vs Galaxy CloudMan,
// clusters of 1–6 c3.2xlarge nodes.
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(experiments.Fig8Options{Runs: 2})
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.HiWayMin, "hiway-6n-min")
		b.ReportMetric(last.CloudManMin, "cloudman-6n-min")
	}
}

// BenchmarkFig9 regenerates Fig. 9: Montage under HEFT with growing
// provenance vs the FCFS baseline on the heterogeneous cluster.
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(experiments.Fig9Options{Reps: 6})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FCFSMedianSec, "fcfs-median-s")
		b.ReportMetric(res.Points[0].MedianSec, "heft-0prior-s")
		b.ReportMetric(res.Points[len(res.Points)-1].MedianSec, "heft-converged-s")
	}
}

// --- Ablations of the design choices DESIGN.md calls out ---

// BenchmarkAblationSchedulers compares all four policies (plus the dynamic
// adaptive-greedy extension) with warm provenance on the heterogeneous
// cluster.
func BenchmarkAblationSchedulers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SchedulerAblation(4, 12, 7)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.MedianSec, r.Policy+"-median-s")
		}
	}
}

// BenchmarkAblationReplication varies the HDFS replication factor under
// data-aware scheduling (the locality/write-traffic trade-off of Fig. 4).
func BenchmarkAblationReplication(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ReplicationAblation(5)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.MakespanMin, "repl"+string(rune('0'+r.Replication))+"-min")
		}
	}
}

// BenchmarkAblationEstimatePolicy contrasts the paper's latest-observation
// zero-default estimates with a non-exploring mean fallback.
func BenchmarkAblationEstimatePolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.EstimateAblation(4, 8, 11)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ZeroDefaultMedianSec[7], "zero-default-run8-s")
		b.ReportMetric(res.MeanFallbackMedianSec[7], "mean-fallback-run8-s")
	}
}

// BenchmarkAblationMultiAM measures §3.1's one-AM-per-workflow design:
// concurrent multi-tenant execution vs serializing workflows.
func BenchmarkAblationMultiAM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.MultiAMAblation(4, 13)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ConcurrentMin, "concurrent-min")
		b.ReportMetric(res.SerialMin, "serial-min")
	}
}

// BenchmarkAblationContainerSizing measures §5's future-work mode:
// task-tailored containers vs the uniform configuration.
func BenchmarkAblationContainerSizing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.ContainerSizingAblation(17)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.UniformMin, "uniform-min")
		b.ReportMetric(res.TailoredMin, "tailored-min")
	}
}

// BenchmarkAblationFaultTolerance sweeps injected failure rates over three
// policies with speculation off/on (the robustness layer's headline
// numbers: makespan cost of faults, and what speculation buys back).
func BenchmarkAblationFaultTolerance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.FaultToleranceAblation(2, 29)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.CrashRate == 0.25 && r.Policy == "fcfs" {
				mode := "nospec"
				if r.Speculate {
					mode = "spec"
				}
				b.ReportMetric(r.MedianSec, "fcfs-r25-"+mode+"-s")
			}
		}
	}
}

// BenchmarkScale runs the scale-out harness — synthetic layered workflows
// of up to ~10k tasks on clusters of up to 256 nodes (set HIWAY_SCALE_FULL=1
// for the full ladder) — and writes the measurements to BENCH_scale.json.
// It measures the simulator itself: events/sec and allocations are the
// kernel's own hot-path cost, not modeled hardware time.
func BenchmarkScale(b *testing.B) {
	full := os.Getenv("HIWAY_SCALE_FULL") != ""
	for i := 0; i < b.N; i++ {
		res, err := experiments.ScaleSweep(experiments.ScaleSweepConfigs(full))
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_scale.json", res.JSON(), 0o644); err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(last.EventsPerSec, "events/s")
		b.ReportMetric(last.WallSec, "wall-s")
	}
}

// BenchmarkServiceLoad runs the multi-tenant service tier up the arrival-rate
// ladder — light load through saturation into overload (set
// HIWAY_SCALE_FULL=1 for the overload rungs) — first memo-off, then the same
// rungs again with the cluster-wide memo table on, and writes the
// measurements to BENCH_service.json. The figures of merit are goodput
// (which must plateau, not collapse, at overload), p99 queue wait (which
// admission backpressure must keep bounded), and the goodput lift the memo
// rungs earn from splicing repeated pipelines.
func BenchmarkServiceLoad(b *testing.B) {
	full := os.Getenv("HIWAY_SCALE_FULL") != ""
	for i := 0; i < b.N; i++ {
		cfgs := experiments.ServiceSweepConfigs(full)
		cfgs = append(cfgs, experiments.WithMemo(experiments.ServiceSweepConfigs(full))...)
		res, err := experiments.ServiceSweep(cfgs)
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_service.json", res.JSON(), 0o644); err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(last.GoodputPerHour, "goodput/h")
		b.ReportMetric(last.QueueWaitP99Sec, "p99-wait-s")
		b.ReportMetric(last.RejectionRate, "rej-rate")
	}
}

// BenchmarkElastic runs the elastic ladder — static over-provisioning vs.
// reactive and predictive autoscaling, each with and without 30% spot-reclaim
// chaos (set HIWAY_SCALE_FULL=1 for the full arrival window) — and writes the
// measurements to BENCH_elastic.json. The figures of merit are goodput
// retained under preemption chaos and cost units spent earning it: the
// elastic policies must hold goodput near their chaos-free baseline while
// billing well under the static fleet.
func BenchmarkElastic(b *testing.B) {
	full := os.Getenv("HIWAY_SCALE_FULL") != ""
	for i := 0; i < b.N; i++ {
		res, err := experiments.ElasticSweep(experiments.ElasticSweepConfigs(full))
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_elastic.json", res.JSON(), 0o644); err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(last.GoodputPerHour, "goodput/h")
		b.ReportMetric(last.CostUnits, "cost-units")
		b.ReportMetric(float64(last.Preempted), "preempted")
	}
}
